"""repro -- Asynchronous Bounded Expected Delay (ABE) networks.

A from-scratch reproduction of

    R. Bakhshi, J. Endrullis, W. Fokkink, J. Pang.
    "Brief Announcement: Asynchronous Bounded Expected Delay Networks."
    PODC 2010.

The library provides:

* the ABE / ABD / asynchronous / synchronous network-model taxonomy
  (:mod:`repro.models`);
* a deterministic discrete-event simulation substrate with drifting local
  clocks and stochastic message delays (:mod:`repro.sim`,
  :mod:`repro.network`);
* the paper's probabilistic leader-election algorithm for anonymous
  unidirectional ABE rings, plus verification of its correctness obligations
  (:mod:`repro.core`);
* synchronizers and the Theorem 1 lower-bound experiment
  (:mod:`repro.synchronizers`);
* baseline leader-election algorithms for comparison (:mod:`repro.algorithms`);
* statistics (:mod:`repro.stats`) and the experiment harness
  (:mod:`repro.experiments`) that regenerate every quantitative claim in the
  paper.

Quickstart
----------
>>> from repro import run_election
>>> result = run_election(n=16, a0=0.3, seed=7)
>>> result.elected
True
"""

from repro.core import (
    AbeElectionProgram,
    AdaptiveActivation,
    ConstantActivation,
    ElectionResult,
    recommended_a0,
    run_election,
    verify_election,
)
from repro.models import ABDModel, ABEModel, AsynchronousModel, SynchronousModel
from repro.network import (
    ExponentialDelay,
    GeometricRetransmissionDelay,
    Network,
    NetworkConfig,
    unidirectional_ring,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "run_election",
    "recommended_a0",
    "ElectionResult",
    "AbeElectionProgram",
    "AdaptiveActivation",
    "ConstantActivation",
    "verify_election",
    "ABEModel",
    "ABDModel",
    "AsynchronousModel",
    "SynchronousModel",
    "Network",
    "NetworkConfig",
    "unidirectional_ring",
    "ExponentialDelay",
    "GeometricRetransmissionDelay",
]
