"""Common machinery for the network-model classes.

A :class:`NetworkModel` encodes *what is known* about a network: admissible
delay models, admissible clock behaviour, admissible processing delays.  The
model classes never execute anything themselves -- execution is the job of
:class:`~repro.network.network.Network` -- they only answer the questions
"does this configuration satisfy the model's assumptions?" and "which known
bounds may an algorithm rely on?".
"""

from __future__ import annotations

import abc
import math
from typing import Any, Dict, Optional, Union

from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution
from repro.network.network import NetworkConfig

__all__ = ["ModelValidationError", "NetworkModel", "classify_delay"]

DelayLike = Union[DelayDistribution, AdversarialDelay]


class ModelValidationError(ValueError):
    """Raised when a network configuration violates a model's assumptions."""


def _delay_mean(delay: DelayLike) -> float:
    return delay.mean()


def _delay_bound(delay: DelayLike) -> Optional[float]:
    return delay.bound()


def classify_delay(delay: DelayLike) -> str:
    """Classify a delay model into the strongest model class that admits it.

    Returns one of ``"synchronous"``, ``"abd"``, ``"abe"`` or
    ``"asynchronous"``:

    * a constant delay of exactly one unit could drive a synchronous round
      structure;
    * a hard-bounded delay is ABD admissible;
    * an unbounded delay with finite mean is ABE admissible;
    * anything else (infinite mean) is only asynchronous.
    """
    bound = _delay_bound(delay)
    mean = _delay_mean(delay)
    if bound is not None and math.isclose(bound, 1.0) and math.isclose(mean, 1.0):
        return "synchronous"
    if bound is not None:
        return "abd"
    if math.isfinite(mean):
        return "abe"
    return "asynchronous"


class NetworkModel(abc.ABC):
    """Base class for network models.

    Subclasses implement :meth:`admits_delay` and :meth:`known_bounds`, and may
    refine :meth:`validate_config`.
    """

    #: Short machine-readable name ("abe", "abd", ...).
    name: str = "model"

    @abc.abstractmethod
    def admits_delay(self, delay: DelayLike) -> bool:
        """Whether the given delay model satisfies this model's assumptions."""

    @abc.abstractmethod
    def known_bounds(self) -> Dict[str, float]:
        """The bounds an algorithm designed for this model may rely on."""

    # ------------------------------------------------------------- validation

    def validate_delay(self, delay: DelayLike) -> None:
        """Raise :class:`ModelValidationError` unless the delay is admissible."""
        if not self.admits_delay(delay):
            raise ModelValidationError(
                f"{delay!r} is not admissible for the {self.name.upper()} model: "
                f"{self._rejection_reason(delay)}"
            )

    def _rejection_reason(self, delay: DelayLike) -> str:
        return "assumption violated"

    def admits_clock_bounds(self, s_low: float, s_high: float) -> bool:
        """Whether the clock-rate bounds are acceptable for this model.

        All models require ``0 < s_low <= s_high``; the synchronous model
        additionally requires perfect clocks.
        """
        return 0 < s_low <= s_high

    def validate_config(self, config: NetworkConfig) -> None:
        """Validate a full :class:`~repro.network.network.NetworkConfig`.

        Checks every channel's delay model (resolving factories) and the clock
        bounds.  Raises :class:`ModelValidationError` on the first violation.
        """
        s_low, s_high = config.clock_bounds
        if not self.admits_clock_bounds(s_low, s_high):
            raise ModelValidationError(
                f"clock bounds ({s_low}, {s_high}) are not admissible for the "
                f"{self.name.upper()} model"
            )
        model = config.delay_model
        if isinstance(model, (DelayDistribution, AdversarialDelay)):
            self.validate_delay(model)
        elif callable(model):
            for channel_id, (source, destination) in enumerate(config.topology.edges):
                self.validate_delay(model(channel_id, source, destination))
        else:  # pragma: no cover - NetworkConfig already restricts types
            raise ModelValidationError(f"unsupported delay model {model!r}")
        if config.processing_delay is not None:
            self.validate_processing(config.processing_delay)

    def validate_processing(self, processing: DelayDistribution) -> None:
        """Validate the local-processing-delay distribution (``gamma`` bound).

        By default any finite-mean processing delay is accepted; the
        synchronous model overrides this to require instantaneous processing.
        """
        if not math.isfinite(processing.mean()):
            raise ModelValidationError(
                f"processing delay {processing!r} has unbounded expectation"
            )

    # ------------------------------------------------------------- hierarchy

    def admits_model(self, other: "NetworkModel") -> bool:
        """Whether every network of ``other`` is also a network of this model.

        The inclusion order is synchronous < ABD < ABE < asynchronous (later
        models make weaker assumptions, so they admit more networks).
        """
        order = ["synchronous", "abd", "abe", "asynchronous"]
        try:
            return order.index(self.name) >= order.index(other.name)
        except ValueError:  # pragma: no cover - unknown custom model
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bounds = ", ".join(f"{k}={v:g}" for k, v in sorted(self.known_bounds().items()))
        return f"{type(self).__name__}({bounds})"
