"""The asynchronous bounded delay (ABD) model.

ABD networks [Chou-Cidon-Gopal-Zaks 1990, Tel 2000] assume a *hard* bound
``D`` on the message delay: every message arrives within ``D`` time units of
being sent.  The paper argues this assumption "is often hard to satisfy in
real-life networks" -- retransmission, queueing and routing all produce delays
that cannot be bounded -- and proposes ABE as the relaxation that survives
those effects.

:class:`ABDModel` validates that every channel's delay model has a hard bound
not exceeding ``D``.  :meth:`ABDModel.as_abe` witnesses the inclusion
"every ABD network is an ABE network" by returning the ABE model with
``delta = D``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.models.base import DelayLike, NetworkModel

__all__ = ["ABDModel"]


class ABDModel(NetworkModel):
    """Asynchronous bounded delay: a known hard bound ``D`` on every delay.

    Parameters
    ----------
    delay_bound:
        The known bound ``D`` (must be positive).
    s_low, s_high:
        Known bounds on local clock rates (shared with the ABE model).
    processing_bound:
        Known bound on the local processing time (``None`` = instantaneous).
    """

    name = "abd"

    def __init__(
        self,
        delay_bound: float,
        s_low: float = 1.0,
        s_high: float = 1.0,
        processing_bound: Optional[float] = None,
    ) -> None:
        if delay_bound <= 0:
            raise ValueError("delay_bound must be positive")
        if s_low <= 0 or s_high < s_low:
            raise ValueError("clock bounds must satisfy 0 < s_low <= s_high")
        if processing_bound is not None and processing_bound < 0:
            raise ValueError("processing_bound must be non-negative")
        self.delay_bound = float(delay_bound)
        self.s_low = float(s_low)
        self.s_high = float(s_high)
        self.processing_bound = processing_bound

    def admits_delay(self, delay: DelayLike) -> bool:
        bound = delay.bound()
        return bound is not None and bound <= self.delay_bound + 1e-12

    def _rejection_reason(self, delay: DelayLike) -> str:
        bound = delay.bound()
        if bound is None:
            return (
                "the delay is unbounded; ABD networks require a hard bound "
                f"D={self.delay_bound} on every message delay"
            )
        return f"the delay bound {bound} exceeds the known ABD bound D={self.delay_bound}"

    def admits_clock_bounds(self, s_low: float, s_high: float) -> bool:
        return 0 < s_low and s_low <= s_high and self.s_low <= s_low and s_high <= self.s_high

    def known_bounds(self) -> Dict[str, float]:
        bounds = {
            "delay_bound": self.delay_bound,
            "s_low": self.s_low,
            "s_high": self.s_high,
        }
        if self.processing_bound is not None:
            bounds["processing_bound"] = self.processing_bound
        return bounds

    def as_abe(self) -> "ABEModel":
        """The ABE model this ABD network trivially satisfies (``delta = D``).

        A hard bound on the delay is in particular a bound on the expected
        delay, which is the formal content of "every ABD network is an ABE
        network".
        """
        from repro.models.abe import ABEModel

        gamma = self.processing_bound if self.processing_bound is not None else 0.0
        return ABEModel(
            expected_delay_bound=self.delay_bound,
            s_low=self.s_low,
            s_high=self.s_high,
            expected_processing_bound=gamma,
        )
