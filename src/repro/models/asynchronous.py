"""The asynchronous network model.

"The asynchronous network model requires only that every message will
eventually be delivered."  In simulation terms: any delay model that always
produces finite delays is admissible; nothing about means or bounds is known,
so :meth:`known_bounds` is empty and time-complexity statements are
meaningless in this model (which is the paper's motivation for ABE).
"""

from __future__ import annotations

from typing import Dict

from repro.models.base import DelayLike, NetworkModel

__all__ = ["AsynchronousModel"]


class AsynchronousModel(NetworkModel):
    """Pure asynchrony: eventual delivery, no quantitative knowledge."""

    name = "asynchronous"

    def admits_delay(self, delay: DelayLike) -> bool:
        # Every delay model in this library produces finite samples with
        # probability 1 (they are all proper distributions), so everything is
        # admissible -- including infinite-mean heavy tails.
        return True

    def known_bounds(self) -> Dict[str, float]:
        return {}
