"""The asynchronous bounded expected delay (ABE) model -- Definition 1.

The paper's contribution.  An ABE network is an asynchronous network where

1. a bound ``delta`` on the *expected* message delay is known (delays of
   different messages are stochastically independent);
2. bounds ``0 < s_low <= s_high`` on the speed of local clocks are known;
3. a bound ``gamma`` on the expected time to process a local event is known.

In contrast to ABD, individual delays may be arbitrarily large -- "all
asynchronous executions are possible, but executions with extremely long
delays are less probable".

:class:`ABEModel` validates configurations against Definition 1 and exposes
the known bounds ``(delta, gamma, s_low, s_high)`` that algorithms designed
for ABE networks (such as the election algorithm of Section 3) may use.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.models.base import DelayLike, ModelValidationError, NetworkModel
from repro.network.delays import DelayDistribution

__all__ = ["ABEModel"]


class ABEModel(NetworkModel):
    """Asynchronous bounded expected delay (Definition 1 of the paper).

    Parameters
    ----------
    expected_delay_bound:
        The known bound ``delta`` on the expected message delay.
    s_low, s_high:
        Known bounds on local clock rates.
    expected_processing_bound:
        The known bound ``gamma`` on the expected local processing time.
    """

    name = "abe"

    def __init__(
        self,
        expected_delay_bound: float,
        s_low: float = 1.0,
        s_high: float = 1.0,
        expected_processing_bound: float = 0.0,
    ) -> None:
        if expected_delay_bound <= 0:
            raise ValueError("expected_delay_bound (delta) must be positive")
        if s_low <= 0 or s_high < s_low:
            raise ValueError("clock bounds must satisfy 0 < s_low <= s_high")
        if expected_processing_bound < 0:
            raise ValueError("expected_processing_bound (gamma) must be non-negative")
        self.expected_delay_bound = float(expected_delay_bound)
        self.s_low = float(s_low)
        self.s_high = float(s_high)
        self.expected_processing_bound = float(expected_processing_bound)

    # Convenient aliases matching the paper's notation -------------------------

    @property
    def delta(self) -> float:
        """The bound on the expected message delay (Definition 1, item 1)."""
        return self.expected_delay_bound

    @property
    def gamma(self) -> float:
        """The bound on the expected local processing time (item 3)."""
        return self.expected_processing_bound

    # ------------------------------------------------------------- validation

    def admits_delay(self, delay: DelayLike) -> bool:
        mean = delay.mean()
        return math.isfinite(mean) and mean <= self.expected_delay_bound + 1e-12

    def _rejection_reason(self, delay: DelayLike) -> str:
        mean = delay.mean()
        if not math.isfinite(mean):
            return (
                "the expected delay diverges; ABE networks require a finite known "
                f"bound delta={self.expected_delay_bound} on the expectation"
            )
        return (
            f"the expected delay {mean} exceeds the known ABE bound "
            f"delta={self.expected_delay_bound}"
        )

    def admits_clock_bounds(self, s_low: float, s_high: float) -> bool:
        return 0 < s_low and s_low <= s_high and self.s_low <= s_low and s_high <= self.s_high

    def validate_processing(self, processing: DelayDistribution) -> None:
        mean = processing.mean()
        if not math.isfinite(mean) or mean > self.expected_processing_bound + 1e-12:
            raise ModelValidationError(
                f"processing delay {processing!r} has expectation {mean}, which "
                f"exceeds the known bound gamma={self.expected_processing_bound}"
            )

    def churn_timeouts(
        self, n: int, *, interval_factor: float = 2.0, timeout_factor: float = 6.0
    ) -> tuple:
        """Default ``(heartbeat_interval, leader_timeout)`` for an ``n``-ring.

        The known bounds are exactly what makes failure detection possible in
        an ABE network: ``(delta + gamma) / s_low`` bounds the expected
        real-time cost of one hop as seen by the slowest admissible clock, so
        a heartbeat circulates the ring in about ``n`` times that.  The
        interval leaves a couple of circulations between heartbeats and the
        timeout several more before a missing heartbeat is treated as a dead
        leader -- expectations admit arbitrarily long individual delays, so
        the slack trades (rare, harmless) false suspicions against detection
        latency; it cannot be removed outright.
        """
        if n < 2:
            raise ValueError(f"churn timeouts need a ring of size n >= 2, got {n}")
        if interval_factor <= 0 or timeout_factor <= 0:
            raise ValueError("interval_factor and timeout_factor must be positive")
        per_hop = (self.delta + self.gamma) / self.s_low
        interval = interval_factor * n * per_hop
        timeout = timeout_factor * n * per_hop + interval
        return interval, timeout

    def known_bounds(self) -> Dict[str, float]:
        return {
            "expected_delay_bound": self.expected_delay_bound,
            "expected_processing_bound": self.expected_processing_bound,
            "s_low": self.s_low,
            "s_high": self.s_high,
        }

    # -------------------------------------------------------------- hierarchy

    def contains_abd(self, delay_bound: float) -> bool:
        """Whether an ABD network with hard bound ``delay_bound`` is admitted.

        True exactly when ``delay_bound <= delta``, since a hard bound is in
        particular a bound on the expectation.
        """
        return delay_bound <= self.expected_delay_bound + 1e-12
