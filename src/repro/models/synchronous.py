"""The synchronous network model.

"In synchronous networks all nodes proceed simultaneously in global rounds."
The model admits only constant unit delays and perfect clocks; it is the
strongest (most restrictive) model in the hierarchy and serves as the ground
truth that synchronizers are checked against.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.models.base import DelayLike, NetworkModel
from repro.network.delays import DelayDistribution

__all__ = ["SynchronousModel"]


class SynchronousModel(NetworkModel):
    """Global-round synchrony: unit delays, perfect clocks, instant processing."""

    name = "synchronous"

    def __init__(self, round_duration: float = 1.0) -> None:
        if round_duration <= 0:
            raise ValueError("round_duration must be positive")
        self.round_duration = float(round_duration)

    def admits_delay(self, delay: DelayLike) -> bool:
        bound = delay.bound()
        mean = delay.mean()
        return (
            bound is not None
            and math.isclose(bound, self.round_duration)
            and math.isclose(mean, self.round_duration)
        )

    def _rejection_reason(self, delay: DelayLike) -> str:
        return (
            f"synchronous networks require every delay to equal the round duration "
            f"{self.round_duration}"
        )

    def admits_clock_bounds(self, s_low: float, s_high: float) -> bool:
        return math.isclose(s_low, s_high) and s_low > 0

    def validate_processing(self, processing: DelayDistribution) -> None:
        if processing.mean() > 0:
            from repro.models.base import ModelValidationError

            raise ModelValidationError(
                "synchronous networks assume processing happens within the round; "
                f"got processing delay {processing!r}"
            )

    def known_bounds(self) -> Dict[str, float]:
        return {"round_duration": self.round_duration}
