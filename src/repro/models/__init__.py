"""Network-model taxonomy: synchronous, asynchronous, ABD and ABE.

Section 2 of the paper positions the ABE model between the classical models:

====================  ==========================================================
Model                 Assumption about message delays
====================  ==========================================================
Synchronous           all nodes proceed in global rounds; delay = 1 round
ABD                   a hard bound ``D`` on every delay is known
**ABE** (this paper)  a bound ``delta`` on the *expected* delay is known
Asynchronous          every message is eventually delivered; nothing else known
====================  ==========================================================

Each model class can *validate* a concrete network configuration (delay
distributions, clock bounds, processing delays) against its assumptions, and
knows its place in the inclusion hierarchy: every synchronous execution is an
ABD execution, every ABD network is an ABE network (``delta = D``), and every
ABE execution is an asynchronous execution ("in a slogan: every execution of
an asynchronous network is also an execution of an ABE network").
"""

from repro.models.base import (
    ModelValidationError,
    NetworkModel,
    classify_delay,
)
from repro.models.synchronous import SynchronousModel
from repro.models.asynchronous import AsynchronousModel
from repro.models.abd import ABDModel
from repro.models.abe import ABEModel

__all__ = [
    "NetworkModel",
    "ModelValidationError",
    "classify_delay",
    "SynchronousModel",
    "AsynchronousModel",
    "ABDModel",
    "ABEModel",
]
