#!/usr/bin/env python3
"""Scenario: why ABE networks cannot be synchronised cheaply (Theorem 1).

A synchronous flooding algorithm is executed three ways on the same
16-node topology:

* directly on a synchronous network (ground truth),
* under Awerbuch's alpha and beta synchronizers over ABE (exponential) delays,
* under the timeout-based ABD synchronizer, first over genuinely bounded
  delays and then over ABE delays with the same mean.

The printout shows the trade-off stated by Theorem 1: the sound synchronizers
pay at least ``n`` messages per round, while the ABD synchronizer beats the
bound only by assuming a hard delay bound -- an assumption ABE delays violate,
producing late messages and wrong results.

Run with::

    python examples/synchronizer_comparison.py
"""

from __future__ import annotations

from repro.algorithms.synchronous import FloodingSync, SynchronousExecutor
from repro.network.delays import ExponentialDelay, UniformDelay
from repro.network.topology import bidirectional_ring
from repro.synchronizers import (
    AbdSynchronizerProgram,
    AlphaSynchronizerProgram,
    BetaSynchronizerProgram,
    build_bfs_tree,
    run_synchronized,
    theorem1_lower_bound,
)

RING_SIZE = 16
ROUNDS = 8
ABD_BOUND = 2.0


def flooding_factory(uid: int) -> FloodingSync:
    return FloodingSync(is_initiator=(uid == 0), value="wake-up", max_rounds=ROUNDS)


def main() -> int:
    topology = bidirectional_ring(RING_SIZE)

    ground_truth = SynchronousExecutor(topology, flooding_factory).run(max_rounds=ROUNDS + 1)
    informed = sum(1 for value, _ in ground_truth.results if value is not None)
    print(f"ground truth (synchronous execution): {informed}/{RING_SIZE} nodes informed "
          f"in {ground_truth.rounds} rounds, {ground_truth.algorithm_messages} algorithm messages")
    print(f"Theorem 1 lower bound for n={RING_SIZE}: {theorem1_lower_bound(RING_SIZE)} messages/round")
    print()

    tree = build_bfs_tree(topology)
    cases = [
        (
            "alpha synchronizer, ABE delays",
            lambda: run_synchronized(
                topology, flooding_factory,
                lambda uid, p, tr, st: AlphaSynchronizerProgram(p, tr, st),
                total_rounds=ROUNDS, synchronizer_name="alpha",
                delay=ExponentialDelay(mean=1.0), seed=5,
            ),
        ),
        (
            "beta synchronizer,  ABE delays",
            lambda: run_synchronized(
                topology, flooding_factory,
                lambda uid, p, tr, st: BetaSynchronizerProgram(p, tr, st),
                total_rounds=ROUNDS, synchronizer_name="beta",
                delay=ExponentialDelay(mean=1.0), seed=5,
                knowledge_factory=lambda uid: tree[uid],
            ),
        ),
        (
            "ABD synchronizer,   bounded delays (its home turf)",
            lambda: run_synchronized(
                topology, flooding_factory,
                lambda uid, p, tr, st: AbdSynchronizerProgram(p, tr, st, delay_bound=ABD_BOUND),
                total_rounds=ROUNDS, synchronizer_name="abd",
                delay=UniformDelay(0.25, ABD_BOUND), seed=5,
            ),
        ),
        (
            "ABD synchronizer,   ABE delays (assumption violated)",
            lambda: run_synchronized(
                topology, flooding_factory,
                lambda uid, p, tr, st: AbdSynchronizerProgram(p, tr, st, delay_bound=ABD_BOUND),
                total_rounds=ROUNDS, synchronizer_name="abd",
                delay=ExponentialDelay(mean=1.0), seed=5,
            ),
        ),
    ]

    for label, runner in cases:
        result = runner()
        matches = result.results == ground_truth.results
        print(f"{label}")
        print(f"    messages/round: {result.messages_per_round:7.1f} "
              f"(>= n? {'yes' if result.messages_per_round >= RING_SIZE else 'NO'})")
        print(f"    late messages : {result.late_messages}")
        print(f"    matches ground truth: {'yes' if matches else 'NO'}")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
