#!/usr/bin/env python3
"""Scenario: leader election in a lossy sensor-network ring.

The paper motivates ABE networks with sensor and ad-hoc networks whose radio
links lose packets: each transmission succeeds only with probability ``p``, so
messages are retransmitted until they get through and the delay is unbounded
-- yet its expectation is ``1/p`` transmissions (Section 1, case iii).

This example builds exactly that scenario:

* it first measures the lossy channel in isolation and checks the ``1/p`` law,
* then runs the election over rings whose channels *are* such lossy links,
  for several loss rates, and shows that the algorithm's cost scales with the
  expected delay ``1/p`` -- the only quantity the ABE model says matters.

Run with::

    python examples/sensor_network_retransmission.py
"""

from __future__ import annotations

from repro.core.analysis import recommended_a0
from repro.core.runner import run_election
from repro.network.retransmission import (
    GeometricRetransmissionDelay,
    LossyChannelModel,
    expected_transmissions,
)
from repro.sim.rng import RandomSource
from repro.stats.estimators import summarise


def measure_channel(p: float, messages: int = 5_000) -> None:
    """Check the 1/p law on an isolated lossy channel."""
    channel = LossyChannelModel(success_probability=p, transmission_time=1.0)
    rng = RandomSource(1234).stream(f"lossy/{p}")
    for _ in range(messages):
        channel.transmit(rng)
    print(
        f"  p={p:.2f}: expected transmissions {expected_transmissions(p):5.2f}, "
        f"measured {channel.observed_mean_attempts():5.2f} over {messages} messages"
    )


def election_over_lossy_ring(p: float, ring_size: int, trials: int = 10) -> None:
    """Elect leaders over a ring whose links retransmit with success prob p."""
    delay = GeometricRetransmissionDelay(success_probability=p, transmission_time=1.0)
    a0 = recommended_a0(ring_size)
    times = []
    messages = []
    for seed in range(trials):
        result = run_election(
            ring_size,
            a0=a0,
            delay=delay,
            seed=seed,
            expected_delay_bound=delay.mean(),
        )
        assert result.elected, "every trial should elect a leader"
        times.append(result.election_time)
        messages.append(float(result.messages_total))
    time_summary = summarise(times)
    msg_summary = summarise(messages)
    print(
        f"  p={p:.2f} (delta={delay.mean():4.1f}): "
        f"time {time_summary.mean:8.1f} +/- {time_summary.sem:5.1f}   "
        f"messages {msg_summary.mean:6.1f} +/- {msg_summary.sem:4.1f}"
    )


def main() -> int:
    print("1) the lossy channel in isolation (Section 1, case iii: k_avg = 1/p)")
    for p in (0.9, 0.5, 0.25, 0.1):
        measure_channel(p)

    ring_size = 16
    print()
    print(f"2) election over a {ring_size}-node sensor ring with lossy links")
    print("   (expected per-hop delay is 1/p; election time scales with it,")
    print("    message count stays roughly constant -- only delta matters)")
    for p in (0.9, 0.5, 0.25):
        election_over_lossy_ring(p, ring_size)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
