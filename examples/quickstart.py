#!/usr/bin/env python3
"""Quickstart: elect a leader on an anonymous ABE ring.

This is the smallest end-to-end use of the library:

1. pick a ring size and the recommended base activation parameter,
2. run the paper's election algorithm over exponential (ABE) channel delays,
3. verify the safety/liveness obligations on the finished execution,
4. print what happened.

Run with::

    python examples/quickstart.py [ring_size] [seed]
"""

from __future__ import annotations

import sys

from repro.core.analysis import recommended_a0, ring_pressure_per_tick
from repro.core.runner import build_election_network, run_election_on_network
from repro.core.verification import verify_election
from repro.network.delays import ExponentialDelay


def main() -> int:
    ring_size = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    a0 = recommended_a0(ring_size)
    print(f"ring size                 : {ring_size}")
    print(f"base activation A0        : {a0:.6g}")
    print(f"ring wake-up pressure/tick: {ring_pressure_per_tick(a0, ring_size):.4g}")
    print(f"expected delay bound delta: 1.0 (exponential channel delays)")
    print()

    # Build the network explicitly (rather than calling run_election) so the
    # example can keep a handle on it for verification and tracing.
    network, status = build_election_network(
        ring_size,
        a0=a0,
        delay=ExponentialDelay(mean=1.0),
        seed=seed,
        enable_trace=True,
    )
    result = run_election_on_network(network, status, a0=a0)

    print(f"leader elected   : {result.elected}")
    print(f"leader (sim uid) : {result.leader_uid}")
    print(f"election time    : {result.election_time:.3f} simulated time units")
    print(f"messages sent    : {result.messages_total} ({result.messages_per_node:.2f} per node)")
    print(f"activations      : {result.activations}")
    print(f"knockout messages: {result.knockout_messages}")
    print()

    report = verify_election(network, result, strict=False)
    print(f"invariant checks : {report.checks_performed} performed, "
          f"{'all passed' if report.ok else 'VIOLATIONS: ' + '; '.join(report.violations)}")

    print()
    print("last 12 trace events:")
    for event in network.tracer.events[-12:]:
        print(" ", event.describe())
    return 0 if result.elected and report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
