#!/usr/bin/env python3
"""Scenario: one algorithm, many real-world delay models.

Sections 1-2 of the paper argue that ABE covers the delay behaviour of real
networks: queueing under load, dynamic routing, lossy-channel retransmission,
heavy-tailed interference -- all unbounded, all with bounded expectation.
This example

* classifies a zoo of delay models into the network-model hierarchy
  (synchronous / ABD / ABE / asynchronous) using the model classes,
* shows that an infinite-mean heavy tail is rejected by the ABE model, and
* runs the election over every admissible family with the same expected delay
  and prints the costs side by side -- the practical meaning of
  "only the bound delta on the expected delay matters".

Run with::

    python examples/delay_model_zoo.py
"""

from __future__ import annotations

from repro.core.analysis import recommended_a0
from repro.core.runner import run_election
from repro.experiments.workloads import delay_families_with_mean
from repro.models import ABDModel, ABEModel, ModelValidationError, classify_delay
from repro.network.delays import ParetoDelay
from repro.stats.estimators import summarise

RING_SIZE = 24
TRIALS = 8
MEAN_DELAY = 1.0


def classify_zoo() -> None:
    print("delay-model classification (strongest admitting model):")
    abe = ABEModel(expected_delay_bound=MEAN_DELAY)
    abd = ABDModel(delay_bound=2.0 * MEAN_DELAY)
    for name, delay in delay_families_with_mean(MEAN_DELAY).items():
        print(
            f"  {name:28s} mean={delay.mean():6.3f}  "
            f"class={classify_delay(delay):12s}  "
            f"ABE admits: {'yes' if abe.admits_delay(delay) else 'no':3s}  "
            f"ABD admits: {'yes' if abd.admits_delay(delay) else 'no'}"
        )

    heavy = ParetoDelay(alpha=0.9, scale=1.0)  # infinite mean
    print(f"  {'pareto(alpha=0.9)':28s} mean=   inf  class={classify_delay(heavy):12s}", end="  ")
    try:
        abe.validate_delay(heavy)
        print("ABE admits: yes (unexpected!)")
    except ModelValidationError:
        print("ABE admits: no  (infinite expectation -> only asynchronous)")


def run_zoo_elections() -> None:
    a0 = recommended_a0(RING_SIZE)
    print()
    print(f"election on a ring of n={RING_SIZE} (A0={a0:.5f}), identical expected delay {MEAN_DELAY}:")
    print(f"  {'delay family':28s} {'messages':>14s} {'time':>16s}")
    for name, delay in delay_families_with_mean(MEAN_DELAY).items():
        messages, times = [], []
        for seed in range(TRIALS):
            result = run_election(
                RING_SIZE,
                a0=a0,
                delay=delay,
                seed=seed,
                expected_delay_bound=delay.mean(),
            )
            assert result.elected
            messages.append(float(result.messages_total))
            times.append(result.election_time)
        msg = summarise(messages)
        tm = summarise(times)
        print(
            f"  {name:28s} {msg.mean:7.1f} +/- {msg.sem:4.1f} "
            f"{tm.mean:9.1f} +/- {tm.sem:5.1f}"
        )


def main() -> int:
    classify_zoo()
    run_zoo_elections()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
