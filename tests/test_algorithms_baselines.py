"""Tests for the baseline leader-election algorithms (E6's comparators)."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.base import ElectionTally, run_ring_election
from repro.algorithms.leader_election import (
    ChangRobertsProgram,
    run_chang_roberts,
    run_dolev_klawe_rodeh,
    run_franklin,
    run_itai_rodeh,
)
from repro.network.delays import ConstantDelay, ExponentialDelay

ALL_RUNNERS = {
    "itai-rodeh": run_itai_rodeh,
    "chang-roberts": run_chang_roberts,
    "dolev-klawe-rodeh": run_dolev_klawe_rodeh,
    "franklin": run_franklin,
}


class TestAllBaselinesElect:
    @pytest.mark.parametrize("name", sorted(ALL_RUNNERS))
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    def test_exactly_one_leader(self, name, n):
        result = ALL_RUNNERS[name](n, seed=3)
        assert result.elected, f"{name} failed to elect on n={n}"
        assert result.leaders_elected == 1
        assert 0 <= result.leader_uid < n

    @pytest.mark.parametrize("name", sorted(ALL_RUNNERS))
    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds(self, name, seed):
        result = ALL_RUNNERS[name](7, seed=seed)
        assert result.elected
        assert result.leaders_elected == 1

    @pytest.mark.parametrize("name", sorted(ALL_RUNNERS))
    def test_reproducible(self, name):
        a = ALL_RUNNERS[name](6, seed=11)
        b = ALL_RUNNERS[name](6, seed=11)
        assert a.leader_uid == b.leader_uid
        assert a.messages_total == b.messages_total


class TestIdentifierBasedWinners:
    """For Chang-Roberts and Franklin the maximum identifier must win.

    Dolev-Klawe-Rodeh is deliberately excluded: there the *value* that wins is
    the ring maximum, but the node that declares itself leader is the node
    currently representing that value, not necessarily its original holder.
    """

    @pytest.mark.parametrize("runner", [run_chang_roberts, run_franklin])
    def test_winner_holds_maximum_identifier(self, runner):
        # Re-create the identifier permutation used by run_ring_election to
        # check that the winner's identifier is the ring maximum.
        import random as _random

        n, seed = 9, 17
        permutation = list(range(n))
        _random.Random(seed ^ 0x5EED1D5).shuffle(permutation)
        result = runner(n, seed=seed)
        assert result.elected
        assert permutation[result.leader_uid] == max(permutation)


class TestMessageComplexityShape:
    def test_chang_roberts_worst_case_quadratic_is_possible(self):
        # With constant delays and the identifier layout produced by the seed,
        # Chang-Roberts costs at most n^2 and at least n messages.
        result = run_chang_roberts(8, delay=ConstantDelay(1.0), seed=1)
        assert 8 <= result.messages_total <= 64

    def test_dkr_within_nlogn_bound(self):
        n = 16
        result = run_dolev_klawe_rodeh(n, seed=5)
        bound = 4 * n * math.log2(n) + 4 * n
        assert result.messages_total <= bound

    def test_franklin_within_nlogn_bound(self):
        n = 16
        result = run_franklin(n, seed=5)
        bound = 4 * n * math.log2(n) + 4 * n
        assert result.messages_total <= bound

    def test_itai_rodeh_messages_grow_superlinearly_but_bounded(self):
        small = run_itai_rodeh(8, seed=2)
        large = run_itai_rodeh(32, seed=2)
        assert large.messages_total > small.messages_total
        assert large.messages_total <= 32 * 32  # far below quadratic blow-up

    def test_election_time_recorded(self):
        result = run_franklin(8, delay=ExponentialDelay(1.0), seed=4)
        assert result.election_time is not None and result.election_time > 0


class TestItaiRodehSpecifics:
    def test_anonymous_run_has_no_identifier_knowledge(self):
        result = run_itai_rodeh(6, seed=9)
        assert result.elected  # works without ids at all

    def test_identity_space_can_be_widened(self):
        # A larger identity space makes first-round ties rarer; the run still
        # elects exactly one leader.
        result = run_itai_rodeh(6, seed=9, identity_space=1000)
        assert result.elected
        assert result.leaders_elected == 1


class TestRunRingElectionHelper:
    def test_requires_at_least_two_nodes(self):
        with pytest.raises(ValueError):
            run_ring_election(lambda uid, tally: ChangRobertsProgram(tally), 1)

    def test_missing_identifiers_raise_clear_error(self):
        with pytest.raises(RuntimeError, match="identifier"):
            run_ring_election(
                lambda uid, tally: ChangRobertsProgram(tally),
                4,
                with_identifiers=False,
            )

    def test_tally_records_leader(self):
        tally_holder = {}

        def factory(uid, tally: ElectionTally):
            tally_holder["tally"] = tally
            return ChangRobertsProgram(tally)

        result = run_ring_election(factory, 5, seed=2)
        assert result.elected
        assert tally_holder["tally"].leader_uid == result.leader_uid
