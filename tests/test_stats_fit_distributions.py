"""Unit tests for growth-order fitting and empirical distribution helpers."""

from __future__ import annotations

import math
import random

import pytest

from repro.stats.complexity_fit import (
    GROWTH_MODELS,
    best_growth_order,
    fit_growth_order,
)
from repro.stats.distributions import ecdf, empirical_quantile, tail_mass


class TestGrowthFit:
    SIZES = [8, 16, 32, 64, 128, 256]

    def test_recovers_linear_growth(self):
        costs = [3.0 * n for n in self.SIZES]
        fits = best_growth_order(self.SIZES, costs)
        assert next(iter(fits)) == "n"
        assert fits["n"].coefficient == pytest.approx(3.0)
        assert fits["n"].relative_error < 1e-9

    def test_recovers_nlogn_growth(self):
        costs = [2.0 * n * math.log2(n) for n in self.SIZES]
        assert next(iter(best_growth_order(self.SIZES, costs))) == "n log n"

    def test_recovers_quadratic_growth(self):
        costs = [0.5 * n * n for n in self.SIZES]
        assert next(iter(best_growth_order(self.SIZES, costs))) == "n^2"

    def test_robust_to_moderate_noise(self):
        rng = random.Random(7)
        costs = [5.0 * n * (1.0 + rng.uniform(-0.15, 0.15)) for n in self.SIZES]
        assert next(iter(best_growth_order(self.SIZES, costs))) == "n"

    def test_prediction_uses_fitted_coefficient(self):
        fit = fit_growth_order([2, 4, 8], [4.0, 8.0, 16.0], "n")
        assert fit.predict(16) == pytest.approx(32.0)

    def test_constant_and_log_models_available(self):
        assert "constant" in GROWTH_MODELS
        costs = [5.0, 5.0, 5.0]
        fit = fit_growth_order([4, 8, 16], costs, "constant")
        assert fit.coefficient == pytest.approx(5.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_growth_order([2, 4], [1.0, 2.0], "n^3")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_growth_order([2], [1.0], "n")
        with pytest.raises(ValueError):
            fit_growth_order([2, 4], [1.0], "n")
        with pytest.raises(ValueError):
            fit_growth_order([1, 2], [1.0, 2.0], "n")

    def test_best_growth_order_sorted_by_error(self):
        costs = [2.0 * n for n in self.SIZES]
        fits = best_growth_order(self.SIZES, costs)
        errors = [fit.relative_error for fit in fits.values()]
        assert errors == sorted(errors)


class TestEmpiricalDistributions:
    def test_ecdf_monotone_and_ends_at_one(self):
        points = ecdf([3.0, 1.0, 2.0, 2.0])
        values = [p for _, p in points]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)
        # Ties are collapsed.
        assert len(points) == 3

    def test_quantiles(self):
        data = list(range(1, 11))  # 1..10
        assert empirical_quantile(data, 0.0) == 1
        assert empirical_quantile(data, 0.5) == 5
        assert empirical_quantile(data, 1.0) == 10

    def test_tail_mass(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert tail_mass(data, 2.5) == pytest.approx(0.5)
        assert tail_mass(data, 10.0) == 0.0

    def test_tail_mass_matches_geometric_tail(self):
        # Cross-check against the retransmission tail formula.
        from repro.network.retransmission import GeometricRetransmissionDelay, tail_probability

        rng = random.Random(8)
        dist = GeometricRetransmissionDelay(0.4)
        samples = dist.sample_many(rng, 30_000)
        assert tail_mass(samples, 3.0) == pytest.approx(tail_probability(0.4, 3), abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ecdf([])
        with pytest.raises(ValueError):
            empirical_quantile([], 0.5)
        with pytest.raises(ValueError):
            empirical_quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            tail_mass([], 1.0)
