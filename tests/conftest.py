"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.network.delays import ConstantDelay, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.topology import bidirectional_ring, unidirectional_ring
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator starting at time 0."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random stream for sampling-based tests."""
    return random.Random(12345)


@pytest.fixture
def random_source() -> RandomSource:
    """A deterministic named-stream factory."""
    return RandomSource(987)


@pytest.fixture
def small_ring_config() -> NetworkConfig:
    """A 6-node unidirectional ring with constant unit delays."""
    return NetworkConfig(
        topology=unidirectional_ring(6),
        delay_model=ConstantDelay(1.0),
        seed=42,
    )


@pytest.fixture
def small_biring_config() -> NetworkConfig:
    """A 6-node bidirectional ring with exponential (ABE) delays."""
    return NetworkConfig(
        topology=bidirectional_ring(6),
        delay_model=ExponentialDelay(mean=1.0),
        seed=43,
    )


def build_network(config: NetworkConfig, program_factory) -> Network:
    """Small helper used by several test modules."""
    return Network(config, program_factory)
