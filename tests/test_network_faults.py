"""Tests for fault injection (message loss, crash-stop) and its interaction
with the election algorithm.

The headline demonstration mirrors the paper's modelling decision: raw message
loss (no retransmission) can deadlock the election, while the same
unreliability expressed as a retransmission *delay* -- the ABE way -- keeps
every run live.
"""

from __future__ import annotations

import pytest

from repro.algorithms.traversal import RingTraversalProgram
from repro.core.analysis import recommended_a0
from repro.core.runner import build_election_network, run_election, run_election_on_network
from repro.network.delays import ConstantDelay
from repro.network.faults import CrashStopFault, FaultInjector, MessageLossFault
from repro.network.network import Network, NetworkConfig
from repro.network.retransmission import GeometricRetransmissionDelay
from repro.network.topology import unidirectional_ring


def traversal_network(n=6, seed=0):
    config = NetworkConfig(
        topology=unidirectional_ring(n), delay_model=ConstantDelay(1.0), seed=seed
    )
    return Network(
        config, lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=50)
    )


class TestMessageLossFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            MessageLossFault(loss_probability=1.0)
        with pytest.raises(ValueError):
            MessageLossFault(loss_probability=-0.1)

    def test_total_loss_probability_drops_messages(self):
        network = traversal_network(seed=3)
        injector = FaultInjector(network)
        affected = injector.apply_message_loss(MessageLossFault(loss_probability=0.9))
        assert affected == 6
        network.run(until=200.0, max_events=5000)
        assert injector.messages_dropped > 0
        assert network.metrics.count("messages_dropped") == injector.messages_dropped
        # Dropped messages were sent but never delivered.
        assert network.messages_delivered() < network.messages_sent()

    def test_zero_probability_drops_nothing(self):
        network = traversal_network(seed=4)
        injector = FaultInjector(network)
        injector.apply_message_loss(MessageLossFault(loss_probability=0.0))
        network.run(until=100.0, max_events=5000)
        assert injector.messages_dropped == 0
        # At most one message may still be in flight when the horizon cuts in.
        assert network.messages_delivered() >= network.messages_sent() - 1

    def test_channel_predicate_limits_scope(self):
        network = traversal_network(seed=5)
        injector = FaultInjector(network)
        affected = injector.apply_message_loss(
            MessageLossFault(
                loss_probability=0.5,
                channel_predicate=lambda channel: channel.source.uid == 0,
            )
        )
        assert affected == 1

    def test_drops_recorded_in_trace(self):
        network = traversal_network(seed=6)
        injector = FaultInjector(network)
        injector.apply_message_loss(MessageLossFault(loss_probability=0.95))
        network.run(until=50.0, max_events=2000)
        assert len(network.tracer.filter(category="drop")) == injector.messages_dropped


class TestCrashStopFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashStopFault(node_uid=0, crash_time=-1.0)

    def test_crashed_node_stops_forwarding(self):
        network = traversal_network(seed=7)
        injector = FaultInjector(network)
        injector.apply_crash(CrashStopFault(node_uid=3, crash_time=2.5))
        network.run(until=100.0, max_events=5000)
        assert injector.nodes_crashed == [3]
        # The token dies at the crashed node, so far fewer than 50 laps finish.
        assert network.programs()[0].completed_laps < 50
        assert network.metrics.count("deliveries_to_crashed") >= 1

    def test_crash_of_unknown_node_rejected(self):
        network = traversal_network()
        injector = FaultInjector(network)
        with pytest.raises(ValueError):
            injector.apply_crash(CrashStopFault(node_uid=99, crash_time=1.0))

    def test_apply_batch_dispatches_by_type(self):
        network = traversal_network(seed=8)
        injector = FaultInjector(network)
        injector.apply(
            [
                MessageLossFault(loss_probability=0.1),
                CrashStopFault(node_uid=2, crash_time=5.0),
            ]
        )
        network.run(until=50.0, max_events=5000)
        assert injector.nodes_crashed == [2]

    def test_apply_rejects_unknown_fault_type(self):
        network = traversal_network()
        injector = FaultInjector(network)
        with pytest.raises(TypeError):
            injector.apply(["not-a-fault"])


class TestFaultIdempotency:
    """Re-applying the same fault must be a no-op, not a compounding wrap."""

    def test_double_apply_same_loss_fault_does_not_compound(self):
        # Historically each apply stacked another lossy_deliver wrapper, so
        # two applies of p=0.3 silently dropped at 1-(1-0.3)^2 = 0.51.  The
        # double-applied network must now behave exactly like a single apply.
        fault = MessageLossFault(loss_probability=0.3)
        single = traversal_network(seed=11)
        once = FaultInjector(single)
        assert once.apply_message_loss(fault) == 6
        single.run(until=100.0, max_events=5000)

        doubled = traversal_network(seed=11)
        twice = FaultInjector(doubled)
        assert twice.apply_message_loss(fault) == 6
        assert twice.apply_message_loss(fault) == 0  # second apply: no-op
        doubled.run(until=100.0, max_events=5000)

        assert twice.messages_dropped == once.messages_dropped
        assert doubled.messages_delivered() == single.messages_delivered()

    def test_equal_loss_faults_are_also_deduplicated(self):
        network = traversal_network(seed=11)
        injector = FaultInjector(network)
        assert injector.apply_message_loss(MessageLossFault(loss_probability=0.3)) == 6
        # A distinct but field-equal fault object describes the same fault.
        assert injector.apply_message_loss(MessageLossFault(loss_probability=0.3)) == 0
        # A genuinely different fault still applies.
        assert injector.apply_message_loss(MessageLossFault(loss_probability=0.1)) == 6

    def test_double_apply_crash_records_one_crash(self):
        network = traversal_network(seed=12)
        injector = FaultInjector(network)
        fault = CrashStopFault(node_uid=3, crash_time=2.5)
        injector.apply_crash(fault)
        injector.apply_crash(fault)
        injector.apply(
            [CrashStopFault(node_uid=3, crash_time=2.5)]
        )  # equal fault via the batch path: still a no-op
        network.run(until=50.0, max_events=5000)
        assert injector.nodes_crashed == [3]
        assert network.metrics.count("nodes_crashed") == 1


class TestCrashEdgeCases:
    """Regression tests for the crash-fault edge cases (already-crashed, t=0)."""

    def test_second_crash_of_same_node_is_noop(self):
        # Two distinct crash directives for one node: the second must not
        # re-record the crash or re-wrap delivery.
        network = traversal_network(seed=9)
        injector = FaultInjector(network)
        injector.apply_crash(CrashStopFault(node_uid=3, crash_time=2.0))
        injector.apply_crash(CrashStopFault(node_uid=3, crash_time=4.0))
        network.run(until=50.0, max_events=5000)
        assert injector.nodes_crashed == [3]
        assert network.metrics.count("nodes_crashed") == 1

    def test_crash_at_time_zero_sticks_for_ticking_programs(self):
        # A crash scheduled at t=0 sorts before Network.start()'s on_start
        # events; historically the stop_ticks() inside it was a no-op (no
        # tick process existed yet) and the "crashed" node kept ticking.  The
        # injector now requeues once within the same instant so the crash
        # lands *after* program start-up.
        network, _status = build_election_network(4, a0=0.5, seed=1)
        injector = FaultInjector(network)
        injector.apply_crash(CrashStopFault(node_uid=2, crash_time=0.0))
        network.run(until=30.0, max_events=5000)
        assert injector.nodes_crashed == [2]
        program = network.programs()[2]
        assert program._tick_process is not None
        assert program._tick_process.stopped

    def test_crash_at_time_zero_on_non_ticking_program_terminates(self):
        # Programs that never start ticks must not requeue forever: the
        # same-instant defer happens at most once.
        network = traversal_network(seed=10)
        injector = FaultInjector(network)
        injector.apply_crash(CrashStopFault(node_uid=0, crash_time=0.0))
        network.run(until=20.0, max_events=2000)
        assert injector.nodes_crashed == [0]
        assert network.metrics.count("nodes_crashed") == 1


class TestElectionUnderFaults:
    """Why the ABE model folds unreliability into the delay distribution."""

    def test_raw_message_loss_can_prevent_election(self):
        # With heavy raw loss and no retransmission some runs fail to elect a
        # leader within the budget -- the algorithm assumes reliable channels.
        failures = 0
        for seed in range(6):
            network, status = build_election_network(8, a0=0.05, seed=seed)
            injector = FaultInjector(network)
            injector.apply_message_loss(MessageLossFault(loss_probability=0.6))
            result = run_election_on_network(
                network, status, max_events=30_000, max_time=3_000.0
            )
            if not result.elected:
                failures += 1
        assert failures > 0

    def test_same_loss_rate_as_retransmission_delay_always_elects(self):
        # The ABE treatment of the very same lossy link: success probability
        # 0.4 per attempt becomes a delay distribution with mean 1/0.4, and
        # every run elects a leader.
        delay = GeometricRetransmissionDelay(success_probability=0.4, transmission_time=1.0)
        for seed in range(6):
            result = run_election(
                8,
                a0=recommended_a0(8),
                delay=delay,
                seed=seed,
                expected_delay_bound=delay.mean(),
            )
            assert result.elected
            assert result.leaders_elected == 1
