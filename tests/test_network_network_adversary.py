"""Unit tests for the Network builder and adversarial delay strategies."""

from __future__ import annotations

from typing import Any

import pytest

from repro.algorithms.traversal import RingTraversalProgram
from repro.network.adversary import (
    AdversarialDelay,
    MaxDelayAdversary,
    TargetedSlowdownAdversary,
)
from repro.network.delays import ConstantDelay, ExponentialDelay, UniformDelay
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import unidirectional_ring


class SilentProgram(NodeProgram):
    """A program that does nothing (used to exercise pure wiring)."""


class TestNetworkConstruction:
    def test_nodes_and_channels_match_topology(self, small_ring_config):
        network = Network(small_ring_config, lambda uid: SilentProgram())
        assert network.n == 6
        assert len(network.nodes) == 6
        assert len(network.channels) == 6
        for node in network.nodes:
            assert node.out_degree == 1
            assert node.in_degree == 1

    def test_channel_between(self, small_ring_config):
        network = Network(small_ring_config, lambda uid: SilentProgram())
        assert network.channel_between(0, 1) is not None
        assert network.channel_between(0, 2) is None

    def test_per_channel_delay_factory(self):
        def factory(channel_id, source, destination):
            return ConstantDelay(1.0 + channel_id)

        config = NetworkConfig(
            topology=unidirectional_ring(3), delay_model=factory, seed=0
        )
        network = Network(config, lambda uid: SilentProgram())
        bounds = [channel.delay_model.bound() for channel in network.channels]
        assert bounds == [1.0, 2.0, 3.0]

    def test_invalid_delay_model_rejected(self):
        config = NetworkConfig(
            topology=unidirectional_ring(3), delay_model="not-a-delay", seed=0
        )
        with pytest.raises(TypeError):
            Network(config, lambda uid: SilentProgram())

    def test_start_is_idempotent(self, small_ring_config):
        started = []

        class StartCounting(NodeProgram):
            def on_start(self) -> None:
                started.append(self.node.uid)

        network = Network(small_ring_config, lambda uid: StartCounting())
        network.start()
        network.start()
        network.run()
        assert sorted(started) == list(range(6))

    def test_run_returns_current_time_and_results(self, small_ring_config):
        network = Network(
            small_ring_config,
            lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=2),
        )
        end = network.run(max_events=10_000)
        assert end == network.now
        assert network.results()[0] == 2
        assert network.messages_sent() == 12  # 2 laps x 6 hops

    def test_stop_when_predicate(self, small_ring_config):
        network = Network(
            small_ring_config,
            lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=100),
        )
        network.stop_when(lambda: network.messages_sent() >= 9)
        network.run(max_events=100_000)
        assert 9 <= network.messages_sent() <= 10

    def test_node_rng_streams_differ(self, small_ring_config):
        network = Network(small_ring_config, lambda uid: SilentProgram())
        assert network.node_rng(0).random() != network.node_rng(1).random()

    def test_same_seed_reproduces_execution(self):
        def build(seed):
            config = NetworkConfig(
                topology=unidirectional_ring(5),
                delay_model=ExponentialDelay(mean=1.0),
                seed=seed,
            )
            network = Network(
                config,
                lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=3),
            )
            network.run(max_events=10_000)
            return network.now

        assert build(7) == build(7)
        assert build(7) != build(8)


class TestAdversaries:
    def test_max_delay_adversary_always_charges_bound(self, rng):
        adversary = MaxDelayAdversary(UniformDelay(0.0, 3.0))
        for _ in range(10):
            assert adversary.delay_for(0, 1, "x", 0.0, rng) == 3.0
        assert adversary.bound() == 3.0
        assert adversary.mean() == 3.0
        assert adversary.is_bounded()
        assert adversary.has_finite_mean()

    def test_max_delay_adversary_requires_bounded_base(self):
        with pytest.raises(ValueError):
            MaxDelayAdversary(ExponentialDelay(1.0))

    def test_targeted_slowdown_hits_only_the_victim(self, rng):
        adversary = TargetedSlowdownAdversary(ConstantDelay(1.0), victim=3, slowdown=5.0)
        assert adversary.delay_for(3, 1, "x", 0.0, rng) == pytest.approx(5.0)
        assert adversary.delay_for(1, 3, "x", 0.0, rng) == pytest.approx(5.0)
        assert adversary.delay_for(1, 2, "x", 0.0, rng) == pytest.approx(1.0)
        assert adversary.mean() == pytest.approx(5.0)
        assert adversary.bound() == pytest.approx(5.0)

    def test_targeted_slowdown_unbounded_base_has_no_bound(self):
        adversary = TargetedSlowdownAdversary(ExponentialDelay(1.0), victim=0, slowdown=2.0)
        assert adversary.bound() is None
        assert adversary.mean() == pytest.approx(2.0)

    def test_slowdown_validation(self):
        with pytest.raises(ValueError):
            TargetedSlowdownAdversary(ConstantDelay(1.0), victim=0, slowdown=0.5)

    def test_adversary_drives_channel_delays(self):
        config = NetworkConfig(
            topology=unidirectional_ring(4),
            delay_model=MaxDelayAdversary(UniformDelay(0.0, 2.0)),
            seed=0,
        )
        network = Network(
            config, lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=1)
        )
        network.run(max_events=1000)
        # Every hop took exactly the bound, so one lap takes 4 * 2.0.
        assert network.now == pytest.approx(8.0)

    def test_custom_adversary_subclass_is_accepted(self):
        class EveryOtherSlow(AdversarialDelay):
            def delay_for(self, source, destination, payload, send_time, rng):
                return 2.0 if source % 2 == 0 else 1.0

            def mean(self) -> float:
                return 2.0

            def bound(self):
                return 2.0

        config = NetworkConfig(
            topology=unidirectional_ring(4), delay_model=EveryOtherSlow(), seed=0
        )
        network = Network(
            config, lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=1)
        )
        network.run(max_events=1000)
        assert network.now == pytest.approx(2.0 + 1.0 + 2.0 + 1.0)
