"""Integration tests: every experiment runs end-to-end (with tiny parameters).

The benchmarks exercise the experiments at realistic sizes; here we only check
that each experiment module produces a well-formed :class:`ExperimentResult`
whose key findings hold even at reduced scale (or, where a finding is too
noisy at tiny scale, that it is at least present and of the right type).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    a1_schedule_ablation,
    a2_purge_ablation,
    e1_message_complexity,
    e2_time_complexity,
    e3_activation_parameter,
    e4_retransmission,
    e5_synchronizer_lower_bound,
    e6_baseline_comparison,
    e7_delay_robustness,
    e8_clock_drift,
)
from repro.experiments.reporting import render_experiment
from repro.experiments.results import ExperimentResult


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "a1", "a2",
        }

    def test_every_module_declares_claim_and_title(self):
        for module in ALL_EXPERIMENTS.values():
            assert isinstance(module.TITLE, str) and module.TITLE
            assert isinstance(module.CLAIM, str) and module.CLAIM
            assert callable(module.run)


class TestE1E2Scaling:
    def test_e1_small(self):
        result = e1_message_complexity.run(sizes=(8, 16, 24), trials=6, base_seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.finding("all_runs_elected")
        assert result.finding("max_messages_per_node") < 8.0
        assert len(result.table()) == 3
        assert "E1" in render_experiment(result)

    def test_e2_small(self):
        result = e2_time_complexity.run(sizes=(8, 16, 24), trials=6, base_seed=2)
        assert result.finding("all_runs_elected")
        assert result.finding("max_time_per_node") < 20.0


class TestE3Tradeoff:
    def test_messages_increase_with_a0(self):
        result = e3_activation_parameter.run(
            n=16, multipliers=(0.5, 1.0, 8.0, 64.0), trials=8, base_seed=3
        )
        assert result.finding("messages_increase_with_a0")
        assert result.finding("recommended_a0") < 0.05


class TestE4Retransmission:
    def test_matches_closed_form(self):
        result = e4_retransmission.run(
            probabilities=(0.2, 0.5, 0.8), messages=5000, base_seed=4
        )
        assert result.finding("matches_1_over_p_within_5pct")
        assert result.finding("delay_is_unbounded")
        assert len(result.table()) == 3


class TestE5Theorem1:
    def test_lower_bound_story(self):
        result = e5_synchronizer_lower_bound.run(
            sizes=(8,), rounds=4, base_seed=5, include_random_graph=False
        )
        assert result.finding("sound_synchronizers_meet_theorem1")
        assert result.finding("abd_synchronizer_undercuts_bound")
        # One table row per (synchronizer, delay-model) case.
        assert len(result.table()) == 4


class TestE6Baselines:
    def test_comparison_table_complete(self):
        result = e6_baseline_comparison.run(sizes=(8, 16), trials=4, base_seed=6)
        algorithms = set(result.table().column("algorithm"))
        assert algorithms == {
            "abe-election", "itai-rodeh", "chang-roberts", "dolev-klawe-rodeh", "franklin",
        }
        # Growth fits exist for every algorithm (values may be noisy at n<=16).
        assert len(result.tables[1]) == 5


class TestE7E8Robustness:
    def test_e7_families_all_elect(self):
        result = e7_delay_robustness.run(n=16, trials=5, base_seed=7)
        assert result.finding("all_runs_elected")
        assert result.finding("message_spread_across_families") < 5.0

    def test_e8_drift_safe(self):
        result = e8_clock_drift.run(
            n=16, clock_bounds=((1.0, 1.0), (0.5, 2.0)), trials=5, base_seed=8
        )
        assert result.finding("always_elected")
        assert result.finding("always_unique_leader")


class TestAblations:
    def test_a1_constant_schedule_is_slower(self):
        # The gap between the schedules opens with the ring size (the constant
        # schedule's endgame waits scale quadratically), so the check uses
        # n=32 where it is robust even with a modest trial count.
        result = a1_schedule_ablation.run(sizes=(16, 32), trials=12, base_seed=9)
        assert result.finding("constant_schedule_slower")

    def test_a2_paper_variant_is_safe_and_live(self):
        result = a2_purge_ablation.run(sizes=(8,), trials=6, base_seed=10)
        assert result.finding("paper_variant_always_terminates")
        assert result.finding("paper_variant_always_single_leader")
