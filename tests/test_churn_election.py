"""Tests for the churn-aware election (repro.core.churn_election).

The headline scenario is the acceptance criterion of the dynamic-network
layer: crash the elected leader, let it recover, and verify the ring detects
the loss, re-elects, and reports the stabilization metrics -- bit-identically
across repeated runs.
"""

from __future__ import annotations

import pytest

from repro.core.churn_election import (
    ChurnAwareElectionProgram,
    ChurnElectionResult,
    ChurnElectionStatus,
    build_churn_election_network,
    run_churn_election,
)
from repro.models.abe import ABEModel
from repro.network.churn import (
    CrashEvent,
    FaultScript,
    LinkDownEvent,
    PeriodicChurn,
    RecoverEvent,
)


LEADER_CRASH = FaultScript(events=(CrashEvent(node="leader", time=40.0, downtime=40.0),))


class TestChurnTimeouts:
    def test_default_model_values(self):
        # per-hop bound (delta + gamma) / s_low = 1 on the unit model:
        # heartbeat interval 2n, liveness timeout 6n*per_hop + interval.
        interval, timeout = ABEModel(expected_delay_bound=1.0).churn_timeouts(8)
        assert interval == pytest.approx(16.0)
        assert timeout == pytest.approx(64.0)

    def test_validation(self):
        model = ABEModel(expected_delay_bound=1.0)
        with pytest.raises(ValueError):
            model.churn_timeouts(1)
        with pytest.raises(ValueError):
            model.churn_timeouts(8, interval_factor=0.0)
        with pytest.raises(ValueError):
            model.churn_timeouts(8, timeout_factor=-1.0)

    def test_program_rejects_degenerate_timeouts(self):
        with pytest.raises(ValueError):
            ChurnAwareElectionProgram(
                ChurnElectionStatus(), heartbeat_interval=0.0, leader_timeout=10.0
            )
        with pytest.raises(ValueError):
            # Timeout must exceed the heartbeat interval or every leader is
            # immediately suspected.
            ChurnAwareElectionProgram(
                ChurnElectionStatus(), heartbeat_interval=10.0, leader_timeout=5.0
            )


class TestLeaderCrashRecover:
    def test_leader_crash_recover_restabilizes(self):
        result = run_churn_election(8, script=LEADER_CRASH, seed=3)
        assert isinstance(result, ChurnElectionResult)
        assert result.elected
        assert result.stabilized
        assert result.crashes == 1
        assert result.recoveries == 1
        assert result.disruptions == 1
        assert result.re_elections == 1
        assert result.leader_downtime > 0.0
        assert result.time_to_restabilize > 0.0
        assert result.max_time_to_restabilize >= result.time_to_restabilize
        assert result.messages_per_re_election > 0.0
        assert result.heartbeats > 0
        # The ring is partitioned while the leader is down, so the re-crown
        # can only happen after the recovery at t = 80.
        assert result.election_time >= 80.0
        assert result.first_election_time < 40.0

    def test_runs_are_bit_identical(self):
        a = run_churn_election(8, script=LEADER_CRASH, seed=3)
        b = run_churn_election(8, script=LEADER_CRASH, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = run_churn_election(8, script=LEADER_CRASH, seed=3)
        b = run_churn_election(8, script=LEADER_CRASH, seed=4)
        assert a != b

    def test_recovered_node_rejoins_as_candidate(self):
        network, status, injector, monitor = build_churn_election_network(
            6, script=LEADER_CRASH, seed=5, enable_trace=True
        )
        network.stop_when(lambda: injector.quiescent and status.live_leaders == 1)
        network.run(until=5_000.0, max_events=200_000)
        rejoins = network.tracer.filter(category="rejoin")
        assert len(rejoins) == 1
        # The rejoining node is the crashed ex-leader, back as a non-leader.
        (rejoin,) = rejoins
        program = network.programs()[rejoin.subject]
        assert not program.crashed
        assert status.live_leaders == 1

    def test_empty_script_matches_plain_election_semantics(self):
        result = run_churn_election(8, script=FaultScript(), seed=1)
        assert result.elected
        assert result.stabilized
        assert result.crashes == 0
        assert result.re_elections == 0
        assert result.leader_downtime == 0.0
        assert result.final_epoch == 0


class TestOtherDisruptions:
    def test_non_leader_crash_needs_no_re_election(self):
        # Crash a fixed node very early -- before any crowning it cannot be
        # the leader, so no leader-loss episode opens; the election completes
        # after the recovery reconnects the ring.
        script = FaultScript(
            events=(CrashEvent(node=2, time=1.0, downtime=30.0),)
        )
        result = run_churn_election(8, script=script, seed=7)
        assert result.elected
        assert result.stabilized
        assert result.crashes == 1
        assert result.recoveries == 1

    def test_link_outage_only(self):
        script = FaultScript(
            events=(LinkDownEvent(channel=3, time=5.0, duration=20.0),)
        )
        result = run_churn_election(8, script=script, seed=9)
        assert result.elected
        assert result.stabilized
        assert result.link_outages == 1
        assert result.crashes == 0

    def test_periodic_leader_churn(self):
        script = FaultScript(
            events=(
                PeriodicChurn(
                    interval=60.0, count=2, downtime=25.0, start=15.0, target="leader"
                ),
            )
        )
        result = run_churn_election(8, script=script, seed=11)
        assert result.elected
        assert result.stabilized
        assert result.crashes == 2
        assert result.recoveries == 2
        assert result.re_elections >= 1

    def test_explicit_recover_event_pairing(self):
        script = FaultScript(
            events=(
                CrashEvent(node=4, time=30.0),
                RecoverEvent(node=4, time=70.0),
            )
        )
        assert script.eventually_quiescent
        result = run_churn_election(8, script=script, seed=13)
        assert result.stabilized
        assert result.crashes == 1
        assert result.recoveries == 1


class TestTimeoutPath:
    def test_suspicions_bump_epochs(self):
        # A long leader outage with a short liveness timeout forces the
        # timeout detection path: non-leaders suspect, bump the epoch, and
        # restart -- the final epoch moves past zero.
        script = FaultScript(
            events=(CrashEvent(node="leader", time=40.0, downtime=120.0),),
            heartbeat_interval=8.0,
            leader_timeout=20.0,
        )
        result = run_churn_election(8, script=script, seed=3)
        assert result.stabilized
        assert result.suspicions > 0
        assert result.final_epoch > 0
        # Epoch races during the long outage may depose an interim crown, so
        # more than one loss/re-crown episode can be recorded.
        assert result.re_elections >= 1
