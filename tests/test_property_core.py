"""Property-based tests (hypothesis) for the election algorithm and clocks.

The headline properties:

* **Safety + liveness of the election** for arbitrary ring sizes, activation
  parameters, seeds and delay means: exactly one leader, no hop-counter
  overflow, all other nodes idle or passive.
* **Clock sanity** for arbitrary bounds and drift settings: local time is
  monotone and respects Definition 1(2).
* **Activation schedule** algebra: the adaptive schedule equals the
  complement of the idle-probability product, which is the identity the
  constant-pressure argument rests on.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.activation import AdaptiveActivation
from repro.core.analysis import combined_idle_probability, wakeup_pressure
from repro.core.election import NodeState
from repro.core.runner import build_election_network, run_election, run_election_on_network
from repro.core.verification import verify_election
from repro.network.delays import ExponentialDelay
from repro.sim.clock import LocalClock, RandomWalkDrift


@given(
    n=st.integers(min_value=2, max_value=24),
    a0=st.floats(min_value=0.001, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    delay_mean=st.floats(min_value=0.1, max_value=3.0),
)
@settings(max_examples=30, deadline=None)
def test_election_safety_and_liveness(n, a0, seed, delay_mean):
    network, status = build_election_network(
        n, a0=a0, delay=ExponentialDelay(mean=delay_mean), seed=seed
    )
    result = run_election_on_network(network, status, a0=a0)
    assert result.elected
    assert result.leaders_elected == 1
    assert result.hop_overflows == 0
    report = verify_election(network, result, strict=False)
    assert report.ok, report.violations
    leaders = [p for p in network.programs() if p.state is NodeState.LEADER]
    assert len(leaders) == 1
    for program in network.programs():
        if program is not leaders[0]:
            assert program.state in (NodeState.IDLE, NodeState.PASSIVE)


@given(
    n=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    s_low=st.floats(min_value=0.25, max_value=1.0),
    ratio=st.floats(min_value=1.0, max_value=4.0),
)
@settings(max_examples=15, deadline=None)
def test_election_correct_under_arbitrary_clock_bounds(n, seed, s_low, ratio):
    result = run_election(
        n,
        a0=0.05,
        seed=seed,
        clock_bounds=(s_low, s_low * ratio),
        clock_drift_factory=lambda uid: RandomWalkDrift(
            initial_rate=s_low * (1 + ratio) / 2.0, step=0.1
        ),
    )
    assert result.elected
    assert result.leaders_elected == 1


@given(
    a0=st.floats(min_value=1e-4, max_value=0.99),
    ds=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=32),
)
@settings(max_examples=200, deadline=None)
def test_wakeup_pressure_identity(a0, ds):
    # P[someone wakes] = 1 - prod (1 - p_i) with p_i = 1 - (1 - a0)^d_i.
    schedule = AdaptiveActivation(a0)
    product = 1.0
    for d in ds:
        product *= 1.0 - schedule.probability(d)
    assert abs(product - combined_idle_probability(a0, ds)) < 1e-9
    assert abs(wakeup_pressure(a0, ds) - (1.0 - product)) < 1e-9


@given(
    a0=st.floats(min_value=1e-4, max_value=0.99),
    d=st.integers(min_value=1, max_value=128),
)
@settings(max_examples=200, deadline=None)
def test_adaptive_probability_bounds(a0, d):
    p = AdaptiveActivation(a0).probability(d)
    assert 0.0 < p <= 1.0
    assert p >= a0 - 1e-12  # never below the base parameter


@given(
    s_low=st.floats(min_value=0.1, max_value=2.0),
    ratio=st.floats(min_value=1.0, max_value=5.0),
    step=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    horizon=st.floats(min_value=1.0, max_value=200.0),
)
@settings(max_examples=60, deadline=None)
def test_clock_monotone_and_within_bounds(s_low, ratio, step, seed, horizon):
    s_high = s_low * ratio
    clock = LocalClock(
        s_low=s_low,
        s_high=s_high,
        drift_model=RandomWalkDrift(initial_rate=(s_low + s_high) / 2.0, step=step),
        rng=random.Random(seed),
    )
    clock.verify_bounds(0.0, horizon)
    previous = 0.0
    for index in range(1, 21):
        t = horizon * index / 20.0
        current = clock.local_time(t)
        assert current >= previous - 1e-12
        previous = current
