"""Cross-module integration tests.

These exercise whole pipelines rather than single modules: election over the
three motivating delay sources of Section 1, election with every moving part
enabled at once (drift + processing delay + FIFO + retransmission), the
synchronizer stack on top of the election's own substrate, and determinism of
complete experiment runs.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import recommended_a0
from repro.core.runner import build_election_network, run_election, run_election_on_network
from repro.core.verification import verify_election
from repro.experiments import e1_message_complexity
from repro.network.delays import ConstantDelay, ExponentialDelay
from repro.network.queueing import MM1SojournDelay
from repro.network.retransmission import GeometricRetransmissionDelay
from repro.network.routing import DynamicRoutingDelay
from repro.network.adversary import TargetedSlowdownAdversary
from repro.sim.clock import RandomWalkDrift
from repro.stats.complexity_fit import best_growth_order


class TestElectionOverMotivatingDelaySources:
    """Section 1's three unbounded-delay sources, end to end."""

    @pytest.mark.parametrize(
        "delay",
        [
            GeometricRetransmissionDelay(success_probability=0.4, transmission_time=0.4),
            MM1SojournDelay(arrival_rate=1.0, service_rate=2.0),
            DynamicRoutingDelay(base_hops=2, detour_probability=0.25, per_hop_mean=0.4),
        ],
        ids=["retransmission", "queueing", "routing"],
    )
    def test_election_succeeds(self, delay):
        result = run_election(
            12,
            a0=recommended_a0(12),
            delay=delay,
            seed=5,
            expected_delay_bound=delay.mean(),
        )
        assert result.elected
        assert result.leaders_elected == 1


class TestKitchenSinkConfiguration:
    def test_everything_enabled_at_once(self):
        network, status = build_election_network(
            10,
            a0=recommended_a0(10),
            delay=GeometricRetransmissionDelay(0.5, transmission_time=0.5),
            seed=9,
            clock_bounds=(0.5, 2.0),
            clock_drift_factory=lambda uid: RandomWalkDrift(initial_rate=1.0, step=0.1),
            processing_delay=ConstantDelay(0.02),
            fifo=True,
            enable_trace=True,
        )
        result = run_election_on_network(network, status)
        assert result.elected
        report = verify_election(network, result)
        assert report.ok
        # The trace recorded the decide event of the leader.
        decide_events = network.tracer.filter(category="decide")
        assert len(decide_events) == 1
        assert decide_events[0].subject == result.leader_uid

    def test_adversarial_slow_link_does_not_break_safety(self):
        adversary = TargetedSlowdownAdversary(ExponentialDelay(1.0), victim=2, slowdown=8.0)
        result = run_election(
            10,
            a0=recommended_a0(10),
            delay=adversary,
            seed=4,
            expected_delay_bound=adversary.mean(),
        )
        assert result.elected
        assert result.leaders_elected == 1


class TestScalingShape:
    def test_linear_fit_wins_with_enough_data(self):
        # A compressed version of E1 with enough trials for a stable fit.
        from repro.experiments.workloads import election_trials

        sizes = [8, 16, 32, 64]
        means = []
        for n in sizes:
            results = election_trials(n, trials=20, base_seed=77)
            means.append(
                sum(r.messages_total for r in results) / len(results)
            )
        fits = best_growth_order(sizes, means)
        best = next(iter(fits))
        assert best in ("n", "n log n")
        # Either way the per-node cost must stay within a small constant.
        per_node = [m / n for m, n in zip(means, sizes)]
        assert max(per_node) < 4.0

    def test_experiment_results_are_deterministic(self):
        a = e1_message_complexity.run(sizes=(8, 16), trials=4, base_seed=123)
        b = e1_message_complexity.run(sizes=(8, 16), trials=4, base_seed=123)
        assert a.table().rows == b.table().rows

    def test_experiment_results_depend_on_seed(self):
        a = e1_message_complexity.run(sizes=(8, 16), trials=4, base_seed=123)
        b = e1_message_complexity.run(sizes=(8, 16), trials=4, base_seed=124)
        assert a.table().rows != b.table().rows
