"""Adaptive Monte-Carlo stopping: convergence, bounds and determinism.

The contract under test (see :class:`repro.experiments.runner.AdaptiveStopping`):
trials run in fixed batches whose boundaries depend only on the configuration,
the stopping rule is evaluated only at those boundaries, and the executed
trial set is therefore bit-identical for serial execution, a
:class:`~repro.experiments.parallel.ParallelTrialRunner` and a shared
:class:`~repro.experiments.parallel.SweepPool` -- the property that lets the
experiment suite adopt sequential stopping without giving up reproducibility.
"""

from __future__ import annotations

import pytest

from repro.core.runner import run_election
from repro.experiments.parallel import ParallelTrialRunner, SweepPool, fork_available
from repro.experiments.runner import (
    AdaptiveStopping,
    adaptive_monte_carlo,
    monte_carlo,
)
from repro.experiments.workloads import ElectionTrial, election_trials


def _election_run_one(n=12, a0=0.3):
    from repro.core.analysis import recommended_a0
    from repro.network.delays import ExponentialDelay

    return ElectionTrial(n, a0, ExponentialDelay(mean=1.0), {})


class TestStoppingRule:
    def test_loose_tolerance_stops_before_the_budget(self):
        stats = {}
        results = monte_carlo(
            _election_run_one(),
            trials=64,
            base_seed=5,
            adaptive=AdaptiveStopping(ci_tolerance=0.5, min_trials=4, batch_size=4),
            stats_out=stats,
        )
        assert stats["stopped_early"]
        assert stats["trials_executed"] < 64
        assert len(results) == stats["trials_executed"]

    def test_tight_tolerance_runs_to_the_cap(self):
        stats = {}
        monte_carlo(
            _election_run_one(),
            trials=10,
            base_seed=5,
            adaptive=AdaptiveStopping(ci_tolerance=1e-9, min_trials=4, batch_size=4),
            stats_out=stats,
        )
        assert stats["trials_executed"] == 10
        assert not stats["stopped_early"]

    def test_min_trials_always_run(self):
        stats = {}
        monte_carlo(
            _election_run_one(),
            trials=32,
            base_seed=5,
            adaptive=AdaptiveStopping(ci_tolerance=1e6, min_trials=6),
            stats_out=stats,
        )
        # Even an absurdly loose tolerance must not undercut min_trials.
        assert stats["trials_executed"] == 6

    def test_max_trials_overrides_the_budget_argument(self):
        stats = {}
        monte_carlo(
            _election_run_one(),
            trials=64,
            base_seed=5,
            adaptive=AdaptiveStopping(ci_tolerance=1e-9, min_trials=4, max_trials=12),
            stats_out=stats,
        )
        assert stats["trials_executed"] == 12

    def test_adaptive_prefix_matches_the_fixed_seed_list(self):
        """Stopping never perturbs seeds: the adaptive run's results are a
        prefix of the fixed-count run's results."""
        adaptive = monte_carlo(
            _election_run_one(),
            trials=64,
            base_seed=7,
            adaptive=AdaptiveStopping(ci_tolerance=0.5, min_trials=4, batch_size=4),
        )
        fixed = monte_carlo(_election_run_one(), trials=64, base_seed=7)
        assert adaptive == fixed[: len(adaptive)]

    def test_none_metric_values_are_skipped(self):
        # election_time is None for non-elected runs; the rule must not crash
        # on them.  A tiny max_events forces non-elections.
        run_one = ElectionTrial(8, 0.3, None, {"max_events": 50})
        stats = {}
        results = adaptive_monte_carlo(
            run_one,
            trials=6,
            adaptive=AdaptiveStopping(
                ci_tolerance=0.5, min_trials=4, metric="election_time"
            ),
            base_seed=1,
            stats_out=stats,
        )
        assert all(r.election_time is None for r in results)
        assert stats["trials_executed"] == 6  # no values -> never converges

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveStopping(ci_tolerance=0.0)
        with pytest.raises(ValueError):
            AdaptiveStopping(min_trials=1)
        with pytest.raises(ValueError):
            AdaptiveStopping(min_trials=8, max_trials=4)
        with pytest.raises(ValueError):
            AdaptiveStopping(confidence=1.0)
        with pytest.raises(ValueError):
            AdaptiveStopping(batch_size=0)

    def test_resolved_fills_only_unset_metric(self):
        assert AdaptiveStopping().resolved("election_time").metric == "election_time"
        pinned = AdaptiveStopping(metric="messages_total")
        assert pinned.resolved("election_time").metric == "messages_total"


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestWorkerCountDeterminism:
    """The satellite acceptance: adaptive stopping picks the same trial count
    serially and with 4 workers, and returns bit-identical results."""

    RULE = AdaptiveStopping(ci_tolerance=0.3, min_trials=4, batch_size=4)

    def test_serial_vs_parallel_runner(self):
        serial = election_trials(12, 48, 9, adaptive=self.RULE)
        parallel = election_trials(12, 48, 9, adaptive=self.RULE, workers=4)
        assert serial == parallel
        assert len(serial) < 48  # the rule actually stopped early

    def test_serial_vs_sweep_pool(self):
        serial = election_trials(12, 48, 9, adaptive=self.RULE)
        with SweepPool(4) as pool:
            pooled = election_trials(12, 48, 9, adaptive=self.RULE, pool=pool)
        assert serial == pooled

    def test_parallel_runner_monte_carlo_entry_point(self):
        run_one = _election_run_one()
        serial = adaptive_monte_carlo(
            run_one, trials=48, adaptive=self.RULE, base_seed=3
        )
        runner = ParallelTrialRunner(workers=4)
        parallel = runner.monte_carlo(
            run_one, trials=48, base_seed=3, adaptive=self.RULE
        )
        assert serial == parallel


class TestExperimentIntegration:
    def test_e1_reduced_with_adaptive_stopping(self):
        from repro.experiments import e1_message_complexity

        rule = AdaptiveStopping(ci_tolerance=0.4, min_trials=4, batch_size=4)
        result = e1_message_complexity.run(
            sizes=(6, 10), trials=24, base_seed=11, adaptive=rule
        )
        executed = result.parameters["trials_executed"]
        assert len(executed) == 2
        assert all(4 <= count <= 24 for count in executed)
        assert result.parameters["ci_tolerance"] == 0.4

    def test_cli_flags_build_the_rule(self, capsys):
        from repro.cli import main

        code = main(
            [
                "experiment",
                "e3",
                "--trials",
                "6",
                "--seed",
                "33",
                "--ci-tol",
                "0.5",
                "--min-trials",
                "4",
                "--max-trials",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "E3" in out

    def test_cli_notes_unsupported_experiment(self, capsys):
        from repro.cli import main

        code = main(["experiment", "e4", "--ci-tol", "0.5"])
        assert code == 0
        assert "ignored" in capsys.readouterr().out

    def test_cli_rejects_bounds_without_tolerance(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="require --ci-tol"):
            main(["experiment", "e3", "--max-trials", "6"])
        with pytest.raises(SystemExit, match="require --ci-tol"):
            main(["experiment", "e3", "--min-trials", "4"])

    def test_cli_small_max_trials_clamps_the_default_floor(self, capsys):
        from repro.cli import main

        # --max-trials below the default min_trials of 8 must not traceback:
        # the floor clamps down to the cap.
        code = main(
            ["experiment", "e3", "--trials", "6", "--ci-tol", "0.5", "--max-trials", "4"]
        )
        assert code == 0
        assert "E3" in capsys.readouterr().out

    def test_cli_invalid_adaptive_combination_exits_cleanly(self):
        from repro.cli import main

        # min > max with both explicit: a clean SystemExit, not a traceback.
        with pytest.raises(SystemExit, match="must be >= min_trials"):
            main(
                [
                    "experiment",
                    "e3",
                    "--ci-tol",
                    "0.5",
                    "--min-trials",
                    "8",
                    "--max-trials",
                    "4",
                ]
            )
