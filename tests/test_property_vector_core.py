"""Property-based agreement between the vector and object election cores.

The two engines draw from different random streams (see the stream-migration
note in ``tests/harness/differential.py``), so the property checked here is
*semantic* equivalence, not trajectory equality: for every configuration
Hypothesis generates -- ring size, seed, activation probability, delay
model, FIFO discipline, faults -- both cores must uphold the election
contract (at most one leader ever; on the clean path exactly one leader,
``n - 1`` knockouts and no hop overflows) and classify the run the same way
where classification is seed-independent (a crashed node partitions a
unidirectional ring for *any* stream, so both cores must report a
non-election).

``derandomize`` keeps CI stable, matching the other property suites.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.runner import (
    build_election_network,
    run_election,
    run_election_on_network,
)
from repro.core.vector_core import run_vector_election
from repro.network.delays import ConstantDelay, ExponentialDelay, UniformDelay
from repro.network.faults import CrashStopFault, FaultInjector, MessageLossFault


def _run_object_with_faults(n, *, a0, seed, faults, max_events):
    """Object-core election with injected faults (the scenario-layer recipe)."""
    network, status = build_election_network(n, a0=a0, seed=seed)
    injector = FaultInjector(network)
    injector.apply(faults)
    return run_election_on_network(
        network, status, max_events=max_events, a0=a0
    )

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

ring_sizes = st.integers(min_value=2, max_value=24)
seeds = st.integers(min_value=0, max_value=2**20)
a0s = st.floats(min_value=0.01, max_value=0.5, allow_nan=False)
delays = st.sampled_from(
    [ExponentialDelay(mean=1.0), UniformDelay(0.1, 2.0), ConstantDelay(1.0)]
)


@SETTINGS
@given(n=ring_sizes, seed=seeds, a0=a0s, delay=delays)
def test_clean_path_unique_leader_and_agreement(n, seed, a0, delay):
    result = run_vector_election(n, a0=a0, delay=delay, seed=seed)
    assert result.elected
    assert result.leaders_elected == 1
    assert 0 <= result.leader_uid < n
    assert result.knockout_messages == n - 1
    assert result.hop_overflows == 0
    # The object core must agree on the contract for the same configuration
    # (not the same trajectory -- the streams differ by design).
    reference = run_election(n, a0=a0, delay=delay, seed=seed)
    assert reference.elected
    assert reference.leaders_elected == 1
    assert reference.knockout_messages == n - 1


@SETTINGS
@given(n=ring_sizes, seed=seeds, a0=a0s)
def test_vector_is_deterministic_per_seed(n, seed, a0):
    assert run_vector_election(n, a0=a0, seed=seed) == run_vector_election(
        n, a0=a0, seed=seed
    )


@SETTINGS
@given(
    n=st.integers(min_value=3, max_value=16),
    seed=seeds,
    loss=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
)
def test_message_loss_preserves_safety_in_both_cores(n, seed, loss):
    vector = run_vector_election(
        n, a0=0.1, seed=seed, message_loss=loss, max_events=30_000
    )
    assert vector.leaders_elected <= 1
    if vector.elected:
        assert 0 <= vector.leader_uid < n
    if loss:
        reference = _run_object_with_faults(
            n,
            a0=0.1,
            seed=seed,
            faults=[MessageLossFault(loss_probability=loss)],
            max_events=30_000,
        )
    else:
        reference = run_election(n, a0=0.1, seed=seed, max_events=30_000)
    assert reference.leaders_elected <= 1


@SETTINGS
@given(
    n=st.integers(min_value=3, max_value=16),
    seed=seeds,
    crash_index=st.integers(min_value=0, max_value=15),
)
def test_initial_crash_partitions_ring_in_both_cores(n, seed, crash_index):
    uid = crash_index % n
    vector = run_vector_election(
        n, a0=0.1, seed=seed, crashes=[(uid, 0.0)], max_events=30_000
    )
    reference = _run_object_with_faults(
        n,
        a0=0.1,
        seed=seed,
        faults=[CrashStopFault(node_uid=uid, crash_time=0.0)],
        max_events=30_000,
    )
    # A node dead from t=0 breaks the unidirectional circuit: no hop count
    # can reach n, so neither core may crown a leader -- stream-independent.
    assert not vector.elected
    assert not reference.elected
    assert vector.leaders_elected == 0
    assert reference.leaders_elected == 0


@SETTINGS
@given(
    n=st.integers(min_value=3, max_value=16),
    seed=seeds,
    crash_index=st.integers(min_value=0, max_value=15),
    crash_time=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
)
def test_late_crash_preserves_safety_in_both_cores(n, seed, crash_index, crash_time):
    # A late crash may or may not abort the election (a token that cleared
    # the crashing node before crash_time can still complete the circuit),
    # and whether it does depends on the stream -- so only safety is common.
    uid = crash_index % n
    vector = run_vector_election(
        n, a0=0.1, seed=seed, crashes=[(uid, crash_time)], max_events=30_000
    )
    reference = _run_object_with_faults(
        n,
        a0=0.1,
        seed=seed,
        faults=[CrashStopFault(node_uid=uid, crash_time=crash_time)],
        max_events=30_000,
    )
    assert vector.leaders_elected <= 1
    assert reference.leaders_elected <= 1


@SETTINGS
@given(
    n=st.integers(min_value=2, max_value=16),
    seed=seeds,
    a0=a0s,
    fifo=st.booleans(),
)
def test_fifo_and_processing_preserve_contract(n, seed, a0, fifo):
    vector = run_vector_election(
        n,
        a0=a0,
        seed=seed,
        fifo=fifo,
        processing_delay=ConstantDelay(value=0.01),
    )
    assert vector.elected
    assert vector.leaders_elected == 1
    assert vector.knockout_messages == n - 1


@SETTINGS
@given(n=st.integers(min_value=3, max_value=10), seed=st.integers(0, 50))
def test_purge_ablation_safety_only(n, seed):
    # Ablation A2: with purging off both cores may legitimately livelock
    # (every node passive, one token circulating), so liveness cannot be
    # asserted -- only that no run ever crowns two leaders.
    result = run_vector_election(
        n, a0=0.2, seed=seed, purge_at_active=False, max_events=15_000
    )
    assert result.leaders_elected <= 1
