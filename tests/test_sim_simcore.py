"""Unit tests for the columnar pending-event store (:mod:`repro.sim.simcore`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.simcore import SimCore


class TestPushPop:
    def test_pops_in_time_order(self):
        core = SimCore(capacity=4)
        core.push(3.0, hop=7, dst=2)
        core.push(1.0, hop=1, dst=0)
        core.push(2.0, hop=4, dst=1)
        assert core.pop() == (1.0, 1, 0)
        assert core.pop() == (2.0, 4, 1)
        assert core.pop() == (3.0, 7, 2)
        assert not core

    def test_ties_break_by_push_order(self):
        core = SimCore()
        for dst in range(5):
            core.push(1.0, hop=dst + 1, dst=dst)
        assert [core.pop()[2] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_bool_and_counters(self):
        core = SimCore()
        assert len(core) == 0 and not core
        core.push(1.0, 1, 0)
        core.push(2.0, 1, 1)
        assert len(core) == 2 and core
        core.pop()
        assert core.pushed == 2
        assert core.popped == 1
        assert len(core) == 1

    def test_peek_time(self):
        core = SimCore()
        assert core.peek_time() is None
        core.push(5.0, 1, 0)
        core.push(2.0, 1, 1)
        assert core.peek_time() == 2.0
        core.pop()
        assert core.peek_time() == 5.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SimCore(capacity=0)


class TestGrowth:
    def test_columns_double_when_free_list_dry(self):
        core = SimCore(capacity=2)
        for i in range(10):
            core.push(float(i), hop=i, dst=i)
        assert core.capacity >= 10
        assert [core.pop() for _ in range(10)] == [
            (float(i), i, i) for i in range(10)
        ]

    def test_slots_recycled(self):
        core = SimCore(capacity=2)
        for i in range(100):
            core.push(float(i), hop=i, dst=i)
            assert core.pop() == (float(i), i, i)
        assert core.capacity == 2


class TestPushBatch:
    def test_batch_matches_sequential_pushes(self):
        batched = SimCore(capacity=2)
        sequential = SimCore(capacity=2)
        times = np.array([3.0, 1.0, 1.0, 2.0])
        hops = np.array([5, 6, 7, 8])
        dsts = np.array([0, 1, 2, 3])
        batched.push_batch(times, hops, dsts)
        for t, h, d in zip(times, hops, dsts):
            sequential.push(float(t), int(h), int(d))
        for _ in range(4):
            assert batched.pop() == sequential.pop()

    def test_scalar_hop_broadcasts(self):
        core = SimCore()
        core.push_batch(np.array([1.0, 2.0]), 1, np.array([4, 9]))
        assert core.pop() == (1.0, 1, 4)
        assert core.pop() == (2.0, 1, 9)

    def test_empty_batch_is_noop(self):
        core = SimCore()
        core.push_batch(np.array([]), 1, np.array([], dtype=np.int64))
        assert len(core) == 0
        assert core.pushed == 0

    def test_batch_grows_columns(self):
        core = SimCore(capacity=2)
        count = 50
        core.push_batch(
            np.arange(count, dtype=np.float64),
            np.arange(count),
            np.arange(count),
        )
        assert core.capacity >= count
        assert [core.pop() for _ in range(count)] == [
            (float(i), i, i) for i in range(count)
        ]


class TestInlineEntries:
    def test_inline_round_trips(self):
        core = SimCore()
        core.push_inline(2.0, hop=9, dst=3)
        core.push_inline(1.0, hop=4, dst=7)
        assert core.pop() == (1.0, 4, 7)
        assert core.pop() == (2.0, 9, 3)

    def test_inline_consumes_no_slot(self):
        core = SimCore(capacity=1)
        for i in range(20):
            core.push_inline(float(i), hop=i, dst=i)
        assert core.capacity == 1
        assert len(core) == 20

    def test_mixed_entries_order_by_time_then_push_order(self):
        # Columnar 3-tuples and inline 4-tuples share the heap; seq is unique
        # and strictly increasing, so comparison never reaches the payload.
        core = SimCore()
        core.push(1.0, hop=1, dst=10)          # seq 0
        core.push_inline(1.0, hop=2, dst=11)   # seq 1
        core.push(1.0, hop=3, dst=12)          # seq 2
        core.push_inline(0.5, hop=4, dst=13)   # seq 3, earlier time
        assert core.pop() == (0.5, 4, 13)
        assert core.pop() == (1.0, 1, 10)
        assert core.pop() == (1.0, 2, 11)
        assert core.pop() == (1.0, 3, 12)

    def test_mixed_with_batch(self):
        core = SimCore(capacity=2)
        core.push_batch(np.array([2.0, 2.0]), 1, np.array([0, 1]))
        core.push_inline(2.0, hop=5, dst=2)
        core.push(2.0, hop=6, dst=3)
        assert [core.pop()[2] for _ in range(4)] == [0, 1, 2, 3]
        assert core.pushed == 4
        assert core.popped == 4
