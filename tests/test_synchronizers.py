"""Tests for the alpha, beta and ABD synchronizers and the Theorem 1 bookkeeping."""

from __future__ import annotations

import pytest

from repro.algorithms.synchronous import (
    FloodingSync,
    MaxComputationSync,
    RoundCounterSync,
    SynchronousExecutor,
)
from repro.network.delays import ExponentialDelay, UniformDelay
from repro.network.topology import bidirectional_ring, grid_topology, random_connected
from repro.synchronizers import (
    AbdSynchronizerProgram,
    AlphaSynchronizerProgram,
    BetaSynchronizerProgram,
    build_bfs_tree,
    messages_per_round,
    run_synchronized,
    theorem1_lower_bound,
    theorem1_satisfied,
)
from repro.synchronizers.lower_bound import summarise_runs

N = 8
ROUNDS = 6


def max_factory(values):
    return lambda uid: MaxComputationSync(values[uid], rounds_needed=ROUNDS)


def ground_truth(topology, values):
    return SynchronousExecutor(topology, max_factory(values)).run(max_rounds=ROUNDS + 1)


def run_alpha(topology, values, delay=None, seed=1):
    return run_synchronized(
        topology,
        max_factory(values),
        lambda uid, p, tr, st: AlphaSynchronizerProgram(p, tr, st),
        total_rounds=ROUNDS,
        synchronizer_name="alpha",
        delay=delay or ExponentialDelay(mean=1.0),
        seed=seed,
    )


def run_beta(topology, values, delay=None, seed=1):
    tree = build_bfs_tree(topology)
    return run_synchronized(
        topology,
        max_factory(values),
        lambda uid, p, tr, st: BetaSynchronizerProgram(p, tr, st),
        total_rounds=ROUNDS,
        synchronizer_name="beta",
        delay=delay or ExponentialDelay(mean=1.0),
        seed=seed,
        knowledge_factory=lambda uid: tree[uid],
    )


def run_abd(topology, values, delay, bound=2.0, seed=1):
    return run_synchronized(
        topology,
        max_factory(values),
        lambda uid, p, tr, st: AbdSynchronizerProgram(p, tr, st, delay_bound=bound),
        total_rounds=ROUNDS,
        synchronizer_name="abd",
        delay=delay,
        seed=seed,
    )


@pytest.fixture
def ring_values():
    return {uid: (uid * 29) % 97 for uid in range(N)}


class TestAlphaSynchronizer:
    def test_matches_synchronous_ground_truth_on_ring(self, ring_values):
        topology = bidirectional_ring(N)
        truth = ground_truth(topology, ring_values)
        result = run_alpha(topology, ring_values)
        assert result.completed
        assert result.results == truth.results

    def test_matches_ground_truth_on_random_graph(self):
        topology = random_connected(10, 0.35, seed=9)
        values = {uid: float((uid * 7) % 23) for uid in range(10)}
        truth = ground_truth(topology, values)
        result = run_alpha(topology, values, seed=4)
        assert result.results == truth.results

    def test_meets_theorem1_bound(self, ring_values):
        topology = bidirectional_ring(N)
        result = run_alpha(topology, ring_values)
        assert theorem1_satisfied(result)
        assert result.messages_per_round >= theorem1_lower_bound(N)

    def test_reproducible(self, ring_values):
        topology = bidirectional_ring(N)
        a = run_alpha(topology, ring_values, seed=6)
        b = run_alpha(topology, ring_values, seed=6)
        assert a.total_messages == b.total_messages
        assert a.elapsed_time == b.elapsed_time

    def test_control_and_algorithm_traffic_accounted(self, ring_values):
        topology = bidirectional_ring(N)
        result = run_alpha(topology, ring_values)
        assert result.algorithm_messages > 0
        assert result.control_messages > 0
        assert result.total_messages == result.algorithm_messages + result.control_messages

    def test_rejects_unknown_payload(self, ring_values):
        topology = bidirectional_ring(N)
        tree_result = run_alpha(topology, ring_values)
        assert tree_result.completed
        from repro.synchronizers.base import SynchronizerStatus

        program = AlphaSynchronizerProgram(
            MaxComputationSync(1.0, rounds_needed=1), 1, SynchronizerStatus()
        )
        with pytest.raises(TypeError):
            program.on_receive("garbage", 0)


class TestBetaSynchronizer:
    def test_matches_ground_truth(self, ring_values):
        topology = bidirectional_ring(N)
        truth = ground_truth(topology, ring_values)
        result = run_beta(topology, ring_values)
        assert result.completed
        assert result.results == truth.results

    def test_meets_theorem1_bound(self, ring_values):
        topology = bidirectional_ring(N)
        result = run_beta(topology, ring_values)
        assert theorem1_satisfied(result)

    def test_beta_uses_fewer_control_messages_than_alpha_on_dense_graphs(self):
        topology = grid_topology(3, 3)
        values = {uid: float(uid) for uid in range(topology.n)}
        alpha = run_alpha(topology, values, seed=2)
        beta = run_beta(topology, values, seed=2)
        # Alpha floods per-neighbour safety; beta aggregates over the tree.
        assert beta.control_messages < alpha.control_messages

    def test_bfs_tree_structure(self):
        topology = grid_topology(3, 3)
        tree = build_bfs_tree(topology, root=0)
        assert tree[0]["tree_parent"] is None
        children_count = sum(len(info["tree_children"]) for info in tree.values())
        assert children_count == topology.n - 1
        for uid in range(1, topology.n):
            assert tree[uid]["tree_parent"] is not None

    def test_bfs_tree_invalid_root(self):
        with pytest.raises(ValueError):
            build_bfs_tree(bidirectional_ring(4), root=9)


class TestAbdSynchronizer:
    def test_correct_on_genuinely_bounded_delays(self, ring_values):
        topology = bidirectional_ring(N)
        truth = ground_truth(topology, ring_values)
        result = run_abd(topology, ring_values, delay=UniformDelay(0.25, 2.0), bound=2.0)
        assert result.completed
        assert result.results == truth.results
        assert result.late_messages == 0

    def test_undercuts_theorem1_bound_with_sparse_client(self):
        topology = bidirectional_ring(N)
        rounds = 6

        def flood_factory(uid):
            return FloodingSync(is_initiator=(uid == 0), value=1, max_rounds=rounds)

        result = run_synchronized(
            topology,
            flood_factory,
            lambda uid, p, tr, st: AbdSynchronizerProgram(p, tr, st, delay_bound=2.0),
            total_rounds=rounds,
            synchronizer_name="abd",
            delay=UniformDelay(0.25, 2.0),
            seed=3,
        )
        assert result.messages_per_round < theorem1_lower_bound(N)
        assert not theorem1_satisfied(result)

    def test_unsound_on_abe_delays(self, ring_values):
        topology = bidirectional_ring(N)
        # Exponential delays with the same mean as the believed bound: the tail
        # exceeds the bound regularly, producing late messages.
        late_total = 0
        for seed in range(5):
            result = run_abd(
                topology, ring_values, delay=ExponentialDelay(mean=1.5), bound=2.0, seed=seed
            )
            late_total += result.late_messages
        assert late_total > 0

    def test_round_length_scales_with_bound(self, ring_values):
        topology = bidirectional_ring(N)
        quick = run_abd(topology, ring_values, delay=UniformDelay(0.1, 1.0), bound=1.0, seed=2)
        slow = run_abd(topology, ring_values, delay=UniformDelay(0.1, 1.0), bound=4.0, seed=2)
        assert slow.elapsed_time > quick.elapsed_time

    def test_parameter_validation(self):
        from repro.synchronizers.base import SynchronizerStatus

        with pytest.raises(ValueError):
            AbdSynchronizerProgram(
                RoundCounterSync(1), 1, SynchronizerStatus(), delay_bound=0.0
            )
        with pytest.raises(ValueError):
            AbdSynchronizerProgram(
                RoundCounterSync(1), 1, SynchronizerStatus(), delay_bound=1.0, safety_margin=-1.0
            )


class TestLowerBoundHelpers:
    def test_bound_value(self):
        assert theorem1_lower_bound(16) == 16
        with pytest.raises(ValueError):
            theorem1_lower_bound(0)

    def test_messages_per_round_helper(self, ring_values):
        topology = bidirectional_ring(N)
        result = run_alpha(topology, ring_values)
        assert messages_per_round(result) == result.messages_per_round

    def test_summarise_runs_rows(self, ring_values):
        topology = bidirectional_ring(N)
        rows = summarise_runs([run_alpha(topology, ring_values)])
        assert rows[0]["synchronizer"] == "alpha"
        assert rows[0]["meets_theorem1"] is True
        assert rows[0]["n"] == N

    def test_total_rounds_validation(self):
        from repro.synchronizers.base import SynchronizerProgram, SynchronizerStatus

        with pytest.raises(ValueError):
            AlphaSynchronizerProgram(RoundCounterSync(1), 0, SynchronizerStatus())
