"""Unit tests for estimators, confidence intervals and running aggregates."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro.stats.confidence import confidence_interval, relative_half_width
from repro.stats.estimators import (
    mean,
    sample_variance,
    standard_error,
    summarise,
)
from repro.stats.sequences import RunningMean, RunningStats


class TestEstimators:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_sample_variance_matches_statistics_module(self):
        data = [1.5, 2.7, 3.1, 0.4, 5.9]
        assert sample_variance(data) == pytest.approx(statistics.variance(data))

    def test_singleton_variance_is_zero(self):
        assert sample_variance([4.2]) == 0.0

    def test_standard_error(self):
        data = [2.0, 4.0, 6.0, 8.0]
        assert standard_error(data) == pytest.approx(
            math.sqrt(statistics.variance(data) / 4)
        )

    def test_summarise_fields(self):
        data = [1.0, 2.0, 3.0, 4.0]
        summary = summarise(data)
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(math.sqrt(summary.variance))
        assert summary.sem == pytest.approx(summary.std / 2.0)
        assert "mean=2.5" in str(summary)

    def test_summarise_empty_raises(self):
        with pytest.raises(ValueError):
            summarise([])


class TestConfidenceIntervals:
    def test_interval_contains_true_mean_for_gaussian_samples(self):
        rng = random.Random(5)
        misses = 0
        for _ in range(50):
            data = [rng.gauss(10.0, 2.0) for _ in range(40)]
            interval = confidence_interval(data, confidence=0.95)
            if not interval.contains(10.0):
                misses += 1
        # 95% interval: expect about 2.5 misses in 50; allow generous slack.
        assert misses <= 8

    def test_interval_is_symmetric_around_estimate(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        interval = confidence_interval(data)
        assert interval.estimate - interval.lower == pytest.approx(
            interval.upper - interval.estimate
        )
        assert interval.half_width > 0

    def test_singleton_degenerates_to_point(self):
        interval = confidence_interval([3.5])
        assert interval.lower == interval.upper == interval.estimate == 3.5

    def test_higher_confidence_wider_interval(self):
        rng = random.Random(1)
        data = [rng.gauss(0, 1) for _ in range(30)]
        narrow = confidence_interval(data, confidence=0.90)
        wide = confidence_interval(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_more_samples_narrower_interval(self):
        rng = random.Random(2)
        small = confidence_interval([rng.gauss(0, 1) for _ in range(10)])
        large = confidence_interval([rng.gauss(0, 1) for _ in range(1000)])
        assert large.half_width < small.half_width

    def test_relative_half_width(self):
        data = [10.0, 10.5, 9.5, 10.2, 9.8]
        rel = relative_half_width(data)
        assert 0 < rel < 0.1

    def test_relative_half_width_zero_mean_is_infinite(self):
        assert relative_half_width([0.0, 0.0, 0.0]) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            confidence_interval([])
        with pytest.raises(ValueError):
            confidence_interval([1.0], confidence=1.5)

    def test_str_rendering(self):
        text = str(confidence_interval([1.0, 2.0, 3.0]))
        assert "95%" in text


class TestRunningAggregates:
    def test_running_mean_matches_batch_mean(self):
        data = [random.Random(3).uniform(0, 10) for _ in range(500)]
        running = RunningMean()
        for value in data:
            running.add(value)
        assert running.mean == pytest.approx(mean(data))
        assert running.count == 500

    def test_running_stats_match_batch_statistics(self):
        data = [random.Random(4).gauss(5, 2) for _ in range(500)]
        running = RunningStats()
        for value in data:
            running.add(value)
        assert running.mean == pytest.approx(mean(data))
        assert running.variance == pytest.approx(sample_variance(data), rel=1e-9)
        assert running.minimum == min(data)
        assert running.maximum == max(data)

    def test_running_stats_few_samples(self):
        stats = RunningStats()
        assert stats.variance == 0.0
        stats.add(1.0)
        assert stats.variance == 0.0
        assert stats.std == 0.0

    def test_empty_running_mean_is_zero(self):
        assert RunningMean().mean == 0.0
