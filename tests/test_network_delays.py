"""Unit tests for the delay-distribution hierarchy."""

from __future__ import annotations

import math
import random

import pytest

from repro.network.delays import (
    ConstantDelay,
    EmpiricalDelay,
    ErlangDelay,
    ExponentialDelay,
    HyperExponentialDelay,
    LogNormalDelay,
    MixtureDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TruncatedDelay,
    UniformDelay,
    WeibullDelay,
)

SAMPLES = 20_000


def empirical_mean(dist, seed=1, count=SAMPLES):
    rng = random.Random(seed)
    return sum(dist.sample(rng) for _ in range(count)) / count


class TestBoundedDistributions:
    def test_constant_delay(self, rng):
        dist = ConstantDelay(2.5)
        assert dist.sample(rng) == 2.5
        assert dist.mean() == 2.5
        assert dist.bound() == 2.5
        assert dist.is_bounded()
        assert dist.has_finite_mean()

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)

    def test_uniform_delay_range_and_mean(self, rng):
        dist = UniformDelay(1.0, 3.0)
        samples = dist.sample_many(rng, 5000)
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert dist.mean() == pytest.approx(2.0)
        assert dist.bound() == 3.0
        assert empirical_mean(dist) == pytest.approx(2.0, rel=0.05)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(-1.0, 2.0)
        with pytest.raises(ValueError):
            UniformDelay(3.0, 2.0)

    def test_empirical_delay_resamples_observations(self, rng):
        dist = EmpiricalDelay([1.0, 2.0, 3.0])
        assert dist.mean() == pytest.approx(2.0)
        assert dist.bound() == 3.0
        assert all(dist.sample(rng) in (1.0, 2.0, 3.0) for _ in range(100))

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDelay([])
        with pytest.raises(ValueError):
            EmpiricalDelay([1.0, -0.5])


class TestUnboundedFiniteMean:
    """The ABE sweet spot: no hard bound, finite expectation."""

    @pytest.mark.parametrize(
        "dist,expected_mean",
        [
            (ExponentialDelay(mean=1.5), 1.5),
            (ShiftedExponentialDelay(offset=0.5, exp_mean=1.0), 1.5),
            (ErlangDelay(shape=3, stage_mean=0.5), 1.5),
            (ParetoDelay(alpha=3.0, scale=1.0), 1.5),
            (LogNormalDelay(mean=1.5, sigma=1.0), 1.5),
            (WeibullDelay(shape=1.0, scale=1.5), 1.5),
            (HyperExponentialDelay([0.5, 0.5], [1.0, 2.0]), 1.5),
        ],
    )
    def test_declared_mean_matches_empirical(self, dist, expected_mean):
        assert dist.mean() == pytest.approx(expected_mean, rel=1e-9)
        assert not dist.is_bounded()
        assert dist.has_finite_mean()
        assert empirical_mean(dist) == pytest.approx(expected_mean, rel=0.08)

    def test_samples_are_nonnegative_and_finite(self, rng):
        for dist in (
            ExponentialDelay(1.0),
            ParetoDelay(alpha=2.5),
            LogNormalDelay(1.0, 0.5),
            WeibullDelay(0.7, 1.0),
        ):
            for value in dist.sample_many(rng, 1000):
                assert value >= 0.0
                assert math.isfinite(value)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ExponentialDelay(0.0)
        with pytest.raises(ValueError):
            ErlangDelay(0, 1.0)
        with pytest.raises(ValueError):
            ShiftedExponentialDelay(-1.0, 1.0)
        with pytest.raises(ValueError):
            LogNormalDelay(1.0, 0.0)
        with pytest.raises(ValueError):
            WeibullDelay(0.0, 1.0)


class TestHeavyTails:
    def test_pareto_infinite_mean_below_alpha_one(self):
        dist = ParetoDelay(alpha=0.9, scale=1.0)
        assert math.isinf(dist.mean())
        assert not dist.has_finite_mean()

    def test_pareto_boundary_alpha_exactly_one(self):
        assert math.isinf(ParetoDelay(alpha=1.0, scale=1.0).mean())

    def test_pareto_samples_respect_scale_minimum(self, rng):
        dist = ParetoDelay(alpha=2.0, scale=3.0)
        assert all(s >= 3.0 for s in dist.sample_many(rng, 1000))


class TestCompositeDistributions:
    def test_hyperexponential_probability_validation(self):
        with pytest.raises(ValueError):
            HyperExponentialDelay([0.6, 0.6], [1.0, 2.0])
        with pytest.raises(ValueError):
            HyperExponentialDelay([], [])
        with pytest.raises(ValueError):
            HyperExponentialDelay([1.0], [0.0])

    def test_mixture_mean_is_weighted_average(self):
        mixture = MixtureDelay([(1.0, ConstantDelay(1.0)), (3.0, ConstantDelay(2.0))])
        assert mixture.mean() == pytest.approx(0.25 * 1.0 + 0.75 * 2.0)

    def test_mixture_bound_is_max_of_bounded_components(self):
        mixture = MixtureDelay([(1.0, ConstantDelay(1.0)), (1.0, UniformDelay(0.0, 5.0))])
        assert mixture.bound() == 5.0

    def test_mixture_unbounded_if_any_component_unbounded(self):
        mixture = MixtureDelay([(1.0, ConstantDelay(1.0)), (1.0, ExponentialDelay(1.0))])
        assert mixture.bound() is None

    def test_mixture_with_infinite_mean_component(self):
        mixture = MixtureDelay([(1.0, ParetoDelay(alpha=0.5)), (1.0, ConstantDelay(1.0))])
        assert math.isinf(mixture.mean())

    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            MixtureDelay([])
        with pytest.raises(ValueError):
            MixtureDelay([(0.0, ConstantDelay(1.0)), (0.0, ConstantDelay(2.0))])

    def test_truncated_turns_abe_into_abd(self, rng):
        dist = TruncatedDelay(ExponentialDelay(mean=1.0), cap=4.0)
        assert dist.is_bounded()
        assert dist.bound() == 4.0
        assert all(s <= 4.0 for s in dist.sample_many(rng, 5000))
        assert dist.mean() <= 1.0 + 1e-12

    def test_truncated_validation(self):
        with pytest.raises(ValueError):
            TruncatedDelay(ExponentialDelay(1.0), cap=0.0)


class TestHelpers:
    def test_sample_many_length_and_validation(self, rng):
        dist = ExponentialDelay(1.0)
        assert len(dist.sample_many(rng, 7)) == 7
        with pytest.raises(ValueError):
            dist.sample_many(rng, -1)

    def test_empirical_mean_helper(self, rng):
        dist = ConstantDelay(2.0)
        assert dist.empirical_mean(rng, 100) == pytest.approx(2.0)

    def test_describe_is_repr_by_default(self):
        dist = ExponentialDelay(1.0)
        assert dist.describe() == repr(dist)

    def test_distribution_objects_are_stateless_across_rngs(self):
        dist = ExponentialDelay(mean=2.0)
        a = dist.sample_many(random.Random(1), 50)
        b = dist.sample_many(random.Random(1), 50)
        assert a == b
