"""Unit tests for event objects and handles."""

from __future__ import annotations

import pytest

from repro.sim.events import Event, EventHandle, EventKind, make_event, next_sequence


class TestEventOrdering:
    def test_time_dominates_ordering(self):
        early = make_event(1.0, lambda: None)
        late = make_event(2.0, lambda: None)
        assert early < late

    def test_priority_breaks_time_ties(self):
        low = make_event(1.0, lambda: None, priority=5)
        high = make_event(1.0, lambda: None, priority=0)
        assert high < low

    def test_sequence_breaks_remaining_ties(self):
        first = make_event(1.0, lambda: None)
        second = make_event(1.0, lambda: None)
        assert first < second
        assert first.sequence < second.sequence

    def test_sequence_counter_is_monotone(self):
        values = [next_sequence() for _ in range(10)]
        assert values == sorted(values)
        assert len(set(values)) == 10


class TestEventFiring:
    def test_fire_invokes_callback(self):
        fired = []
        event = make_event(0.0, lambda: fired.append(True))
        event.fire()
        assert fired == [True]

    def test_cancelled_event_does_not_invoke_callback(self):
        fired = []
        event = make_event(0.0, lambda: fired.append(True))
        event.cancelled = True
        event.fire()
        assert fired == []


class TestEventHandle:
    def test_handle_exposes_metadata(self):
        event = make_event(3.5, lambda: None, kind=EventKind.TIMER, payload={"x": 1})
        handle = EventHandle(event)
        assert handle.time == 3.5
        assert handle.kind is EventKind.TIMER
        assert handle.payload == {"x": 1}
        assert not handle.cancelled

    def test_cancel_marks_event(self):
        event = make_event(1.0, lambda: None)
        handle = EventHandle(event)
        assert handle.cancel()
        assert event.cancelled

    def test_fire_marks_fired_and_cancel_then_fails(self):
        event = make_event(1.0, lambda: None)
        handle = EventHandle(event)
        assert not handle.fired
        event.fire()
        assert handle.fired
        assert handle.cancel() is False
        assert not handle.cancelled

    def test_cancelled_event_never_reports_fired(self):
        event = make_event(1.0, lambda: None)
        handle = EventHandle(event)
        handle.cancel()
        event.fire()
        assert not handle.fired

    def test_sort_key_matches_ordering_fields(self):
        event = make_event(2.0, lambda: None, priority=3)
        assert event.sort_key == (2.0, 3, event.sequence)

    def test_event_kind_str(self):
        assert str(EventKind.MESSAGE_DELIVERY) == "message-delivery"


class TestEventValidation:
    def test_default_kind_is_generic(self):
        event = make_event(0.0, lambda: None)
        assert event.kind is EventKind.GENERIC

    def test_dataclass_comparison_ignores_callback(self):
        a = Event(time=1.0, priority=0, sequence=1, callback=lambda: None)
        b = Event(time=1.0, priority=0, sequence=2, callback=lambda: 42)
        assert a < b
