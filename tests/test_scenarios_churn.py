"""Tests for the declarative churn layer and the adversarial delay kinds.

Round-trips the ``churn`` SpecNode through JSON, checks that churn is
strictly opt-in (``churn=None`` specs serialize exactly as before, so every
pre-existing fingerprint and golden is untouched), and verifies the
serial-vs-parallel bit-identity contract extends to churn trials.
"""

from __future__ import annotations

import json

import pytest

from repro.core.churn_election import ChurnElectionResult
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.resilience import spec_fingerprint
from repro.network.adversary import MaxDelayAdversary, TargetedSlowdownAdversary
from repro.network.churn import CrashEvent, FaultScript, PeriodicChurn
from repro.scenarios.registry import CHURN, CHURN_EVENTS, DELAYS, build_churn, build_delay
from repro.scenarios.runtime import run_scenario
from repro.scenarios.spec import ScenarioSpec, SpecNode, spec_from_dict


def churn_spec(n=6, trials=3, seed=5, churn=None, **kwargs):
    return ScenarioSpec(
        algorithm="abe-election",
        topology=SpecNode("uniring", {"n": n}),
        seed=seed,
        trials=trials,
        label="churn-test",
        churn=churn,
        **kwargs,
    )


SCRIPT_NODE = SpecNode(
    "script",
    {
        "events": [
            {"kind": "crash", "params": {"node": "leader", "time": 40.0, "downtime": 40.0}},
            {"kind": "link-down", "params": {"channel": 1, "time": 10.0, "duration": 5.0}},
        ]
    },
)


class TestChurnRegistry:
    def test_registered_kinds(self):
        assert set(CHURN.known()) >= {"script", "periodic"}
        assert set(CHURN_EVENTS.known()) >= {
            "crash",
            "recover",
            "link-down",
            "link-up",
            "periodic",
        }

    def test_build_churn_none_passthrough(self):
        assert build_churn(None) is None

    def test_build_script(self):
        script = build_churn(SCRIPT_NODE)
        assert isinstance(script, FaultScript)
        assert isinstance(script.events[0], CrashEvent)
        assert script.events[0].node == "leader"
        assert script.eventually_quiescent

    def test_build_periodic_shorthand(self):
        script = build_churn(
            SpecNode(
                "periodic",
                {"interval": 30.0, "count": 2, "downtime": 10.0, "target": "leader"},
            )
        )
        assert isinstance(script, FaultScript)
        (process,) = script.events
        assert isinstance(process, PeriodicChurn)

    def test_unknown_kinds_fail_fast(self):
        with pytest.raises(ValueError, match="known"):
            build_churn(SpecNode("quake", {}))
        with pytest.raises(ValueError, match="known"):
            build_churn(SpecNode("script", {"events": [{"kind": "meteor", "params": {}}]}))


class TestChurnSpecSerialization:
    def test_round_trip_through_json(self):
        spec = churn_spec(churn=SCRIPT_NODE)
        restored = spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.churn == SCRIPT_NODE

    def test_churn_none_is_strictly_opt_in(self):
        # No "churn" key in the serialized form -- pre-existing fingerprints
        # (and the 17 goldens keyed by them) are untouched.
        spec = churn_spec(churn=None)
        assert "churn" not in spec.to_dict()

    def test_churn_changes_the_fingerprint(self):
        plain = churn_spec(churn=None)
        churned = churn_spec(churn=SCRIPT_NODE)
        assert spec_fingerprint(plain) != spec_fingerprint(churned)


class TestChurnTrialExecution:
    def test_serial_and_parallel_runs_are_bit_identical(self):
        spec = churn_spec(n=6, trials=4, churn=SCRIPT_NODE)
        serial = run_scenario(spec)
        parallel = run_scenario(spec, workers=4)
        assert serial == parallel
        assert all(isinstance(r, ChurnElectionResult) for r in serial)
        assert all(r.elected for r in serial)

    def test_vector_core_rejected(self):
        spec = churn_spec(churn=SCRIPT_NODE, core="vector")
        with pytest.raises(ValueError, match="per-node object core"):
            run_scenario(spec)

    def test_crash_faults_rejected_alongside_churn(self):
        spec = churn_spec(
            churn=SCRIPT_NODE,
            faults=[SpecNode("crash", {"node_uid": 2, "crash_time": 5.0})],
        )
        with pytest.raises(ValueError, match="churn"):
            run_scenario(spec)

    def test_non_election_algorithms_reject_churn(self):
        spec = ScenarioSpec(
            algorithm="echo-wave",
            topology=SpecNode("star", {"n": 6}),
            seed=1,
            trials=1,
            churn=SCRIPT_NODE,
        )
        with pytest.raises(ValueError):
            run_scenario(spec)


class TestAdversarialDelayKinds:
    def test_registered_and_buildable(self):
        assert "max-adversary" in DELAYS
        assert "targeted-slowdown" in DELAYS
        adversary = build_delay(
            SpecNode(
                "max-adversary",
                {"base": {"kind": "uniform", "params": {"low": 0.5, "high": 1.5}}},
            )
        )
        assert isinstance(adversary, MaxDelayAdversary)
        targeted = build_delay(
            SpecNode(
                "targeted-slowdown",
                {
                    "base": {"kind": "exponential", "params": {"mean": 1.0}},
                    "victim": 3,
                    "slowdown": 5.0,
                },
            )
        )
        assert isinstance(targeted, TargetedSlowdownAdversary)

    def test_adversary_spec_round_trips(self):
        spec = churn_spec(
            delay=SpecNode(
                "targeted-slowdown",
                {
                    "base": {"kind": "exponential", "params": {"mean": 1.0}},
                    "victim": 0,
                },
            )
        )
        restored = spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_adversary_delay_runs_an_election(self):
        spec = churn_spec(
            n=6,
            trials=2,
            delay=SpecNode(
                "max-adversary",
                {"base": {"kind": "uniform", "params": {"low": 0.5, "high": 1.5}}},
            ),
        )
        results = run_scenario(spec)
        assert all(r.elected for r in results)


class TestExperimentRegistration:
    def test_e9_registered_with_study(self):
        assert "e9" in ALL_EXPERIMENTS
        study = ALL_EXPERIMENTS["e9"].build_study(
            sizes=(6,), intervals=(50.0,), trials=2
        )
        assert study.metric == "time_to_restabilize"
        assert all(point.churn is not None for point in study.points)
