"""Unit tests for activation schedules, hop messages and the analysis helpers."""

from __future__ import annotations

import math

import pytest

from repro.core.activation import AdaptiveActivation, ConstantActivation
from repro.core.analysis import (
    async_ring_message_lower_bound,
    combined_idle_probability,
    expected_ticks_until_first_activation,
    itai_rodeh_expected_messages,
    linear_reference,
    nlogn_reference,
    recommended_a0,
    ring_pressure_per_tick,
    wakeup_pressure,
)
from repro.core.messages import HopMessage


class TestAdaptiveActivation:
    def test_matches_paper_formula(self):
        schedule = AdaptiveActivation(0.3)
        for d in (1, 2, 5, 10):
            assert schedule.probability(d) == pytest.approx(1.0 - 0.7**d)

    def test_monotone_in_d(self):
        schedule = AdaptiveActivation(0.1)
        probabilities = [schedule.probability(d) for d in range(1, 20)]
        assert all(b > a for a, b in zip(probabilities, probabilities[1:]))

    def test_d_equals_one_gives_a0(self):
        schedule = AdaptiveActivation(0.42)
        assert schedule.probability(1) == pytest.approx(0.42)

    def test_probability_stays_in_unit_interval(self):
        schedule = AdaptiveActivation(0.9)
        for d in (1, 10, 1000):
            # Mathematically < 1; floating point may round up to exactly 1.0
            # for huge d, which is still a valid probability.
            assert 0.0 < schedule.probability(d) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            AdaptiveActivation(0.0)
        with pytest.raises(ValueError):
            AdaptiveActivation(1.0)
        with pytest.raises(ValueError):
            AdaptiveActivation(0.5).probability(0)


class TestConstantActivation:
    def test_ignores_d(self):
        schedule = ConstantActivation(0.2)
        assert schedule.probability(1) == schedule.probability(100) == 0.2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ConstantActivation(-0.1)
        with pytest.raises(ValueError):
            ConstantActivation(0.5).probability(0)


class TestHopMessage:
    def test_hop_must_be_positive(self):
        with pytest.raises(ValueError):
            HopMessage(hop=0)

    def test_forwarding_preserves_token_identity(self):
        original = HopMessage(hop=1)
        forwarded = original.forwarded(new_hop=2, knocked_out_idle=False)
        assert forwarded.token_id == original.token_id
        assert forwarded.hop == 2

    def test_knockout_flag_is_sticky(self):
        original = HopMessage(hop=1)
        knocked = original.forwarded(2, knocked_out_idle=True)
        later = knocked.forwarded(3, knocked_out_idle=False)
        assert knocked.knockout
        assert later.knockout

    def test_distinct_messages_get_distinct_tokens(self):
        assert HopMessage(hop=1).token_id != HopMessage(hop=1).token_id

    def test_repr_shows_hop_and_knockout(self):
        message = HopMessage(hop=3).forwarded(4, knocked_out_idle=True)
        assert "hop=4" in repr(message)
        assert "*" in repr(message)


class TestWakeupPressure:
    def test_combined_idle_probability_formula(self):
        # (1 - a0)^(sum of d)
        assert combined_idle_probability(0.5, [1, 1]) == pytest.approx(0.25)
        assert combined_idle_probability(0.5, [2]) == pytest.approx(0.25)

    def test_pressure_constant_when_d_sum_constant(self):
        # The paper's constant-pressure argument: knocking out an idle node
        # (removing d=1) while the next survivor's d grows by 1 leaves the
        # ring-wide pressure unchanged.
        before = wakeup_pressure(0.1, [1, 1, 1, 1])
        after = wakeup_pressure(0.1, [2, 1, 1])
        assert before == pytest.approx(after)

    def test_expected_ticks_until_first_activation(self):
        # With n=1 and a0=0.5 the waiting time is geometric with mean 2.
        assert expected_ticks_until_first_activation(0.5, 1) == pytest.approx(2.0)
        # Larger rings activate sooner.
        assert expected_ticks_until_first_activation(
            0.01, 100
        ) < expected_ticks_until_first_activation(0.01, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            combined_idle_probability(1.5, [1])
        with pytest.raises(ValueError):
            combined_idle_probability(0.5, [0])
        with pytest.raises(ValueError):
            wakeup_pressure(0.5, [0])
        with pytest.raises(ValueError):
            expected_ticks_until_first_activation(0.5, 0)


class TestRecommendedA0:
    def test_scales_roughly_like_inverse_n_squared(self):
        a0_small = recommended_a0(8)
        a0_large = recommended_a0(64)
        ratio = a0_small / a0_large
        assert 40 < ratio < 90  # (64/8)^2 = 64, allow slack for the exact formula

    def test_ring_pressure_matches_target(self):
        for n in (8, 32, 128):
            a0 = recommended_a0(n, activations_per_traversal=1.0)
            pressure = ring_pressure_per_tick(a0, n)
            assert pressure == pytest.approx(1.0 / n, rel=1e-6)

    def test_higher_target_gives_higher_a0(self):
        assert recommended_a0(32, 2.0) > recommended_a0(32, 1.0)

    def test_result_in_unit_interval(self):
        for n in (2, 10, 1000):
            assert 0.0 < recommended_a0(n) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_a0(1)
        with pytest.raises(ValueError):
            recommended_a0(10, activations_per_traversal=0.0)
        with pytest.raises(ValueError):
            ring_pressure_per_tick(0.5, 0)
        with pytest.raises(ValueError):
            ring_pressure_per_tick(1.5, 4)


class TestReferenceCurves:
    def test_nlogn_lower_bound_curve(self):
        assert async_ring_message_lower_bound(8) == pytest.approx(24.0)
        assert itai_rodeh_expected_messages(8) == pytest.approx(24.0)
        with pytest.raises(ValueError):
            async_ring_message_lower_bound(1)

    def test_linear_reference_through_anchor(self):
        curve = linear_reference([2, 4, 8], anchor_n=4, anchor_value=10.0)
        assert curve == pytest.approx([5.0, 10.0, 20.0])

    def test_nlogn_reference_through_anchor(self):
        curve = nlogn_reference([4, 8], anchor_n=4, anchor_value=8.0)
        assert curve[0] == pytest.approx(8.0)
        assert curve[1] == pytest.approx(8.0 * (8 * 3) / (4 * 2))

    def test_reference_validation(self):
        with pytest.raises(ValueError):
            linear_reference([2], anchor_n=0, anchor_value=1.0)
        with pytest.raises(ValueError):
            nlogn_reference([2], anchor_n=1, anchor_value=1.0)
