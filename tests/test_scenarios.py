"""Tests for the declarative scenario API (specs, registries, entry points).

The load-bearing guarantees:

* a :class:`~repro.scenarios.spec.ScenarioSpec` that mirrors an experiment's
  parameters reproduces the kwarg-driven run **bit for bit** (same derived
  seeds, same trial callable, same results);
* ``to_dict -> from_dict`` is the identity, and running the round-tripped
  spec is deterministic end to end;
* unknown registry keys fail fast with the list of known keys;
* every registered experiment exposes a ``build_study`` whose points resolve
  against the registries -- the declarative catalogue and the experiment
  modules cannot drift apart;
* every spec file under ``examples/scenarios/`` loads and runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.runner import run_election
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import AdaptiveStopping, trial_seeds
from repro.experiments.workloads import election_spec, election_trials
from repro.scenarios import (
    ALGORITHMS,
    DELAYS,
    TOPOLOGIES,
    ScenarioSpec,
    SpecNode,
    StudySpec,
    SweepSpec,
    load_spec,
    run_scenario,
    run_study,
    spec_from_dict,
)
from repro.scenarios.registry import DRIFTS, SCHEDULES, build_delay
from repro.scenarios.report import render_scenario

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.algorithm == "abe-election"
        assert spec.topology.kind == "uniring"

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(trials=0)
        with pytest.raises(ValueError):
            ScenarioSpec(a0=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(clock_bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            ScenarioSpec(tick_period=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(workers=-1)

    def test_delay_and_retransmission_are_exclusive(self):
        with pytest.raises(ValueError, match="retransmission"):
            ScenarioSpec(
                delay={"kind": "exponential"},
                retransmission={"success_probability": 0.5},
            )

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(ValueError, match="topologyy"):
            ScenarioSpec.from_dict({"topologyy": {"kind": "uniring"}})

    def test_node_shorthand_string(self):
        spec = ScenarioSpec(delay="exponential")
        assert spec.delay == SpecNode("exponential")

    def test_stopping_mapping_becomes_rule(self):
        spec = ScenarioSpec(stopping={"ci_tolerance": 0.1, "min_trials": 4})
        assert isinstance(spec.stopping, AdaptiveStopping)
        assert spec.stopping.ci_tolerance == 0.1


class TestJsonRoundTrip:
    def _rich_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            topology={"kind": "uniring", "params": {"n": 12}},
            delay={
                "kind": "per-link",
                "params": {
                    "delays": [
                        {"kind": "exponential", "params": {"mean": 1.0}},
                        {"kind": "uniform", "params": {"low": 0.5, "high": 1.5}},
                    ]
                },
            },
            seed=5,
            trials=3,
            label="rich",
            fifo=True,
            clock_bounds=(0.5, 2.0),
            drift={"kind": "random-walk", "params": {"initial_rate": 1.25, "step": 0.1}},
            faults=({"kind": "message-loss", "params": {"loss_probability": 0.01}},),
            stopping=AdaptiveStopping(ci_tolerance=0.2, min_trials=2, max_trials=3),
            max_events=50_000,
        )

    def test_round_trip_is_identity(self):
        spec = self._rich_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_survives_json_serialization(self):
        spec = self._rich_spec()
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_defaults_are_omitted_from_dict(self):
        data = ScenarioSpec(seed=9).to_dict()
        assert data["seed"] == 9
        assert "fifo" not in data and "purge_at_active" not in data

    def test_round_tripped_spec_runs_deterministically(self):
        spec = ScenarioSpec(
            topology={"kind": "uniring", "params": {"n": 10}}, seed=3, trials=3, label="rt"
        )
        direct = run_scenario(spec)
        round_tripped = run_scenario(
            spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        )
        assert direct == round_tripped

    def test_study_round_trip(self):
        study = StudySpec(
            name="demo",
            metric="election_time",
            points=(ScenarioSpec(seed=1, label="a"), ScenarioSpec(seed=2, label="b")),
        )
        again = StudySpec.from_dict(json.loads(json.dumps(study.to_dict())))
        assert again == study

    def test_spec_from_dict_dispatches_on_points(self):
        assert isinstance(spec_from_dict({"study": "s", "points": [{}]}), StudySpec)
        assert isinstance(spec_from_dict({"seed": 1}), ScenarioSpec)


class TestRegistryErrors:
    def test_unknown_topology_names_candidates(self):
        spec = ScenarioSpec(
            algorithm="echo-wave", topology={"kind": "moebius", "params": {"n": 8}}
        )
        with pytest.raises(ValueError, match="known topologies.*grid"):
            run_scenario(spec)

    def test_unknown_delay_names_candidates(self):
        with pytest.raises(ValueError, match="known delay models.*exponential"):
            run_scenario(ScenarioSpec(delay={"kind": "gaussian"}))

    def test_unknown_algorithm_names_candidates(self):
        with pytest.raises(ValueError, match="known algorithms.*abe-election"):
            run_scenario(ScenarioSpec(algorithm="paxos"))

    def test_unknown_drift_names_candidates(self):
        with pytest.raises(ValueError, match="known drift models.*random-walk"):
            run_scenario(ScenarioSpec(drift={"kind": "brownian"}))

    def test_unknown_schedule_names_candidates(self):
        with pytest.raises(ValueError, match="known activation schedules.*adaptive"):
            run_scenario(ScenarioSpec(schedule={"kind": "linear"}))

    def test_bad_parameters_name_the_kind(self):
        with pytest.raises(ValueError, match="bad parameters for delay model 'exponential'"):
            run_scenario(ScenarioSpec(delay={"kind": "exponential", "params": {"rate": 2}}))

    def test_ring_algorithm_rejects_non_ring_topology(self):
        spec = ScenarioSpec(topology={"kind": "grid", "params": {"rows": 3, "cols": 3}})
        with pytest.raises(ValueError, match="ring topologies"):
            run_scenario(spec)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TOPOLOGIES.register("uniring", lambda n: None)


class TestSpecVsKwargBitIdentity:
    def test_plain_election_matches_run_election(self):
        spec = ScenarioSpec(
            topology={"kind": "uniring", "params": {"n": 16}},
            seed=7,
            trials=4,
            label="n16",
            a0=0.3,
        )
        expected = [run_election(16, a0=0.3, seed=s) for s in trial_seeds(7, 4, "n16")]
        assert run_scenario(spec) == expected

    def test_election_spec_matches_election_trials(self):
        """The representative check: the declarative path reproduces the
        kwarg-threaded harness (same labels, same derived seeds, same trial
        callable) bit for bit."""
        spec = election_spec(12, 5, 31, fifo=True)
        assert run_scenario(spec) == election_trials(12, 5, 31, fifo=True)

    def test_drift_spec_matches_drift_factory_kwargs(self):
        from repro.sim.clock import RandomWalkDrift

        spec = election_spec(
            10,
            3,
            13,
            clock_bounds=(0.5, 2.0),
            drift=SpecNode("random-walk", {"initial_rate": 1.25, "step": 0.15}),
        )
        expected = election_trials(
            10,
            3,
            13,
            clock_bounds=(0.5, 2.0),
            clock_drift_factory=lambda uid: RandomWalkDrift(initial_rate=1.25, step=0.15),
        )
        assert run_scenario(spec) == expected

    def test_adaptive_stopping_matches(self):
        rule = AdaptiveStopping(ci_tolerance=0.5, min_trials=2, batch_size=2)
        spec = election_spec(8, 12, 3)
        assert run_scenario(spec, adaptive=rule) == election_trials(
            8, 12, 3, adaptive=rule.resolved("messages_total")
        )
        # The rule can equivalently live on the spec itself.
        assert run_scenario(spec.replace(stopping=rule)) == run_scenario(
            spec, adaptive=rule
        )


class TestStudiesAndExperimentsStayInSync:
    """CI gate: every registered experiment must define a StudySpec battery
    whose points resolve against the registries."""

    def test_every_experiment_has_a_build_study(self):
        for experiment_id, module in sorted(ALL_EXPERIMENTS.items()):
            assert hasattr(module, "build_study"), (
                f"experiment {experiment_id} has no build_study(); every "
                "experiment must define its declarative StudySpec battery"
            )

    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_studies_compile_against_the_registries(self, experiment_id):
        study = ALL_EXPERIMENTS[experiment_id].build_study()
        assert isinstance(study, StudySpec)
        assert study.name == experiment_id
        for point in study.points:
            assert point.algorithm in ALGORITHMS
            assert point.topology.kind in TOPOLOGIES
            if point.delay is not None:
                assert point.delay.kind in DELAYS
            if point.drift is not None:
                assert point.drift.kind in DRIFTS
            if point.schedule is not None:
                assert point.schedule.kind in SCHEDULES

    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_studies_serialize(self, experiment_id):
        study = ALL_EXPERIMENTS[experiment_id].build_study()
        again = StudySpec.from_dict(json.loads(study.to_json()))
        assert again == study

    def test_run_study_matches_per_point_run_scenario(self):
        study = ALL_EXPERIMENTS["e2"].build_study(sizes=(6, 8), trials=2, base_seed=5)
        assert run_study(study) == [run_scenario(point) for point in study.points]


class TestSweepSpec:
    def test_expansion_applies_overrides_in_order(self):
        sweep = SweepSpec(
            base=ScenarioSpec(seed=4),
            points=(
                {"topology": SpecNode("uniring", {"n": 8}), "label": "n8"},
                {"topology": SpecNode("uniring", {"n": 12}), "label": "n12"},
            ),
        )
        scenarios = sweep.scenarios()
        assert [s.topology.params["n"] for s in scenarios] == [8, 12]
        assert [s.label for s in scenarios] == ["n8", "n12"]
        study = StudySpec.from_sweep("sweep-demo", sweep)
        assert len(study.points) == 2

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(base=ScenarioSpec(), points=())


class TestNonRingWorkloads:
    def test_echo_wave_covers_a_grid(self):
        spec = ScenarioSpec(
            algorithm="echo-wave",
            topology={"kind": "grid", "params": {"rows": 3, "cols": 4}},
            seed=5,
            trials=2,
            label="grid",
        )
        results = run_scenario(spec)
        assert all(r.completed for r in results)
        assert all(r.nodes_reached == 12 for r in results)
        assert results == run_scenario(spec)  # deterministic

    def test_flooding_wave_informs_a_tree(self):
        spec = ScenarioSpec(
            algorithm="flooding-wave",
            topology={"kind": "tree", "params": {"n": 15, "branching": 2}},
            seed=2,
            trials=2,
            label="tree",
        )
        results = run_scenario(spec)
        assert all(r.completed and r.nodes_reached == 15 for r in results)

    def test_per_link_delay_assigns_models_cyclically(self):
        node = SpecNode(
            "per-link",
            {
                "delays": [
                    {"kind": "constant", "params": {"value": 1.0}},
                    {"kind": "constant", "params": {"value": 2.0}},
                ]
            },
        )
        factory = build_delay(node)
        assert factory(0, 0, 1).value == 1.0
        assert factory(1, 1, 2).value == 2.0
        assert factory(2, 2, 3).value == 1.0
        assert factory.mean() == 2.0

    def test_heterogeneous_link_election_elects(self):
        spec = ScenarioSpec(
            topology={"kind": "uniring", "params": {"n": 10}},
            delay={
                "kind": "per-link",
                "params": {
                    "delays": [
                        {"kind": "exponential", "params": {"mean": 1.0}},
                        {"kind": "uniform", "params": {"low": 0.2, "high": 1.8}},
                    ]
                },
            },
            seed=1,
            trials=2,
            label="hetero",
        )
        results = run_scenario(spec)
        assert all(r.elected and r.leaders_elected == 1 for r in results)

    def test_faulted_election_counts_drops(self):
        spec = ScenarioSpec(
            topology={"kind": "uniring", "params": {"n": 8}},
            seed=6,
            trials=2,
            label="faulted",
            faults=({"kind": "message-loss", "params": {"loss_probability": 0.2}},),
            max_events=30_000,
            max_time=500.0,
        )
        results = run_scenario(spec)
        assert len(results) == 2  # bounded runs always return

    def test_one_shot_algorithms_reject_trials(self):
        spec = ScenarioSpec(
            algorithm="lossy-channel", trials=3, params={"p": 0.5, "messages": 100}
        )
        with pytest.raises(ValueError, match="one-shot"):
            run_scenario(spec)

    def test_wave_faults_are_applied_not_ignored(self):
        clean = ScenarioSpec(
            algorithm="echo-wave",
            topology={"kind": "star", "params": {"n": 8}},
            seed=4,
            trials=1,
            label="star",
            max_events=5_000,
        )
        crashed = clean.replace(
            faults=({"kind": "crash", "params": {"node_uid": 3, "crash_time": 0.0}},)
        )
        healthy = run_scenario(clean)[0]
        broken = run_scenario(crashed)[0]
        assert healthy.completed and healthy.nodes_reached == 8
        # A crash-stopped leaf swallows its token and never echoes back, so
        # the initiator can never complete the wave.
        assert not broken.completed

    def test_unsupported_knobs_rejected_not_ignored(self):
        with pytest.raises(ValueError, match="does not support the 'max_time' knob"):
            run_scenario(
                ScenarioSpec(
                    algorithm="chang-roberts",
                    topology={"kind": "uniring", "params": {"n": 8}},
                    max_time=0.001,
                )
            )
        with pytest.raises(ValueError, match="does not support the 'a0' knob"):
            run_scenario(
                ScenarioSpec(
                    algorithm="itai-rodeh",
                    topology={"kind": "uniring", "params": {"n": 8}},
                    a0=0.5,
                )
            )
        with pytest.raises(ValueError, match="does not support the 'delay' knob"):
            run_scenario(
                ScenarioSpec(
                    algorithm="synchronizer-battery",
                    topology={"kind": "biring", "params": {"n": 6}},
                    delay={"kind": "constant", "params": {"value": 1.0}},
                )
            )
        with pytest.raises(ValueError, match="does not support the 'fifo' knob"):
            run_scenario(
                ScenarioSpec(
                    algorithm="lossy-channel", fifo=True, params={"p": 0.5, "messages": 10}
                )
            )

    def test_election_overrides_still_accept_runtime_objects(self):
        """The historical ``election_overrides={'delay': <object>}`` contract
        of e1/e3 must survive the declarative refactor."""
        from repro.experiments import e1_message_complexity
        from repro.network.delays import ExponentialDelay

        result = e1_message_complexity.run(
            sizes=(6, 8),
            trials=2,
            base_seed=1,
            election_overrides={"delay": ExponentialDelay(mean=2.0)},
        )
        assert len(result.table()) == 2
        spec = election_spec(8, 2, 1, delay=ExponentialDelay(mean=2.0))
        assert spec.delay is None and "delay" in spec.params
        assert run_scenario(spec) == election_trials(
            8, 2, 1, delay=ExponentialDelay(mean=2.0)
        )


class TestExampleSpecs:
    def test_gallery_exists(self):
        assert EXAMPLES_DIR.is_dir()
        assert len(list(EXAMPLES_DIR.glob("*.json"))) >= 4

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES_DIR.glob("*.json")), ids=lambda p: p.name
    )
    def test_example_loads_and_runs_reduced(self, path):
        spec = load_spec(path)
        if isinstance(spec, StudySpec):
            points = [point.replace(trials=1) for point in spec.points]
            per_point = run_study(
                StudySpec(name=spec.name, metric=spec.metric, points=tuple(points))
            )
            assert len(per_point) == len(points)
            rendered = render_scenario(points[0], per_point[0])
        else:
            results = run_scenario(spec.replace(trials=1))
            assert len(results) == 1
            rendered = render_scenario(spec, results)
        assert "scenario:" in rendered


class TestScenarioCli:
    def test_scenario_subcommand_runs_spec_file(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "tiny.json"
        path.write_text(
            json.dumps(
                {
                    "algorithm": "abe-election",
                    "topology": {"kind": "uniring", "params": {"n": 8}},
                    "seed": 3,
                    "trials": 2,
                    "label": "tiny",
                }
            )
        )
        assert main(["scenario", str(path)]) == 0
        output = capsys.readouterr().out
        assert "abe-election" in output
        assert "aggregates" in output

    def test_scenario_subcommand_rejects_bad_spec(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"algorithm": "paxos"}))
        with pytest.raises(SystemExit, match="known algorithms"):
            main(["scenario", str(path)])

    def test_scenario_subcommand_rejects_bad_json(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["scenario", str(path)])

    def test_list_mentions_scenario_algorithms(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "echo-wave" in output and "uniring" in output

    def test_aggregates_skip_identifier_columns(self):
        spec = ScenarioSpec(
            topology={"kind": "uniring", "params": {"n": 8}}, seed=3, trials=3, label="agg"
        )
        rendered = render_scenario(spec, run_scenario(spec))
        assert "messages_total: mean=" in rendered
        assert "seed: mean=" not in rendered
        assert "leader_uid: mean=" not in rendered
