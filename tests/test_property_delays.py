"""Property-based tests (hypothesis) for delay distributions and model admission.

These check the structural invariants the rest of the library leans on:
samples are always non-negative and finite, declared means/bounds are
consistent with sampling, and the ABD -> ABE -> asynchronous admission
hierarchy holds for arbitrarily parameterised distributions.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.models import ABDModel, ABEModel, AsynchronousModel, classify_delay
from repro.network.delays import (
    ConstantDelay,
    ErlangDelay,
    ExponentialDelay,
    LogNormalDelay,
    ParetoDelay,
    TruncatedDelay,
    UniformDelay,
    WeibullDelay,
)
from repro.network.retransmission import GeometricRetransmissionDelay
from repro.network.routing import DynamicRoutingDelay


positive_means = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def bounded_delays() -> st.SearchStrategy:
    constants = positive_means.map(ConstantDelay)
    uniforms = st.tuples(
        st.floats(min_value=0.0, max_value=10.0), st.floats(min_value=0.0, max_value=10.0)
    ).map(lambda pair: UniformDelay(min(pair), min(pair) + abs(pair[1] - pair[0]) + 1e-6))
    truncated = st.tuples(positive_means, st.floats(min_value=0.5, max_value=20.0)).map(
        lambda pair: TruncatedDelay(ExponentialDelay(pair[0]), cap=pair[1])
    )
    return st.one_of(constants, uniforms, truncated)


def unbounded_finite_mean_delays() -> st.SearchStrategy:
    exponentials = positive_means.map(ExponentialDelay)
    erlangs = st.tuples(st.integers(1, 5), positive_means).map(
        lambda pair: ErlangDelay(pair[0], pair[1])
    )
    paretos = st.tuples(
        st.floats(min_value=1.2, max_value=5.0), st.floats(min_value=0.1, max_value=5.0)
    ).map(lambda pair: ParetoDelay(alpha=pair[0], scale=pair[1]))
    lognormals = st.tuples(positive_means, st.floats(min_value=0.2, max_value=2.0)).map(
        lambda pair: LogNormalDelay(mean=pair[0], sigma=pair[1])
    )
    weibulls = st.tuples(
        st.floats(min_value=0.4, max_value=3.0), st.floats(min_value=0.1, max_value=5.0)
    ).map(lambda pair: WeibullDelay(shape=pair[0], scale=pair[1]))
    retransmissions = st.tuples(
        st.floats(min_value=0.05, max_value=1.0), st.floats(min_value=0.1, max_value=3.0)
    ).map(lambda pair: GeometricRetransmissionDelay(pair[0], pair[1]))
    routings = st.tuples(
        st.integers(1, 5), st.floats(min_value=0.0, max_value=0.8), positive_means
    ).map(lambda triple: DynamicRoutingDelay(triple[0], triple[1], per_hop_mean=triple[2]))
    return st.one_of(
        exponentials, erlangs, paretos, lognormals, weibulls, retransmissions, routings
    )


any_delay = st.one_of(bounded_delays(), unbounded_finite_mean_delays())


@given(delay=any_delay, seed=seeds)
@settings(max_examples=150, deadline=None)
def test_samples_are_nonnegative_and_finite(delay, seed):
    rng = random.Random(seed)
    for _ in range(20):
        value = delay.sample(rng)
        assert value >= 0.0
        assert math.isfinite(value)


@given(delay=bounded_delays(), seed=seeds)
@settings(max_examples=100, deadline=None)
def test_bounded_delays_never_exceed_their_bound(delay, seed):
    rng = random.Random(seed)
    bound = delay.bound()
    assert bound is not None
    for _ in range(50):
        assert delay.sample(rng) <= bound + 1e-9


@given(delay=any_delay)
@settings(max_examples=150, deadline=None)
def test_declared_bound_implies_finite_mean(delay):
    # Hard bound => finite expectation (the ABD -> ABE inclusion at the level
    # of individual channels).
    if delay.is_bounded():
        assert delay.has_finite_mean()
        assert delay.mean() <= delay.bound() + 1e-9


@given(delay=any_delay)
@settings(max_examples=150, deadline=None)
def test_model_admission_hierarchy(delay):
    abe = ABEModel(expected_delay_bound=delay.mean() if delay.has_finite_mean() else 1.0)
    asynchronous = AsynchronousModel()
    if delay.is_bounded():
        abd = ABDModel(delay_bound=delay.bound())
        assert abd.admits_delay(delay)
        # Every ABD-admissible channel is admissible for the derived ABE model.
        assert abd.as_abe().admits_delay(delay)
    if delay.has_finite_mean():
        assert abe.admits_delay(delay)
    assert asynchronous.admits_delay(delay)


@given(delay=any_delay)
@settings(max_examples=150, deadline=None)
def test_classification_is_consistent_with_properties(delay):
    label = classify_delay(delay)
    if label == "synchronous":
        assert delay.is_bounded()
    if label == "abd":
        assert delay.is_bounded()
    if label == "abe":
        assert not delay.is_bounded() and delay.has_finite_mean()
    if label == "asynchronous":
        assert not delay.has_finite_mean()


@given(delay=unbounded_finite_mean_delays(), seed=seeds)
@settings(max_examples=40, deadline=None)
def test_sample_mean_is_in_the_right_ballpark(delay, seed):
    # A loose two-sided check (heavy-tailed distributions converge slowly):
    # the sample mean of 4000 draws lies within a factor 3 of the declared
    # mean.  This catches parameterisation mistakes by an order of magnitude
    # without being flaky.
    rng = random.Random(seed)
    count = 4000
    total = sum(delay.sample(rng) for _ in range(count))
    empirical = total / count
    declared = delay.mean()
    assert empirical < declared * 3.0
    assert empirical > declared / 3.0
