"""Unit tests for the network-model taxonomy (synchronous / ABD / ABE / async)."""

from __future__ import annotations

import pytest

from repro.models import (
    ABDModel,
    ABEModel,
    AsynchronousModel,
    ModelValidationError,
    SynchronousModel,
    classify_delay,
)
from repro.network.delays import (
    ConstantDelay,
    ExponentialDelay,
    ParetoDelay,
    TruncatedDelay,
    UniformDelay,
)
from repro.network.adversary import MaxDelayAdversary, TargetedSlowdownAdversary
from repro.network.network import NetworkConfig
from repro.network.retransmission import GeometricRetransmissionDelay
from repro.network.topology import unidirectional_ring


class TestClassifyDelay:
    def test_unit_constant_is_synchronous(self):
        assert classify_delay(ConstantDelay(1.0)) == "synchronous"

    def test_bounded_is_abd(self):
        assert classify_delay(UniformDelay(0.0, 2.0)) == "abd"
        assert classify_delay(ConstantDelay(3.0)) == "abd"

    def test_unbounded_finite_mean_is_abe(self):
        assert classify_delay(ExponentialDelay(1.0)) == "abe"
        assert classify_delay(GeometricRetransmissionDelay(0.5)) == "abe"

    def test_infinite_mean_is_asynchronous(self):
        assert classify_delay(ParetoDelay(alpha=0.8)) == "asynchronous"


class TestABEModel:
    def test_definition_1_aliases(self):
        model = ABEModel(expected_delay_bound=2.0, expected_processing_bound=0.5)
        assert model.delta == 2.0
        assert model.gamma == 0.5
        assert model.known_bounds()["expected_delay_bound"] == 2.0

    def test_admits_unbounded_with_mean_below_delta(self):
        model = ABEModel(expected_delay_bound=2.0)
        assert model.admits_delay(ExponentialDelay(mean=2.0))
        assert model.admits_delay(GeometricRetransmissionDelay(0.5))
        assert model.admits_delay(UniformDelay(0.0, 4.0))  # mean 2 <= delta

    def test_rejects_mean_above_delta(self):
        model = ABEModel(expected_delay_bound=1.0)
        assert not model.admits_delay(ExponentialDelay(mean=1.5))
        with pytest.raises(ModelValidationError):
            model.validate_delay(ExponentialDelay(mean=1.5))

    def test_rejects_infinite_mean(self):
        model = ABEModel(expected_delay_bound=10.0)
        with pytest.raises(ModelValidationError):
            model.validate_delay(ParetoDelay(alpha=1.0))

    def test_admits_adversary_via_declared_mean(self):
        model = ABEModel(expected_delay_bound=5.0)
        adversary = TargetedSlowdownAdversary(ExponentialDelay(1.0), victim=0, slowdown=4.0)
        assert model.admits_delay(adversary)

    def test_clock_bound_validation(self):
        model = ABEModel(expected_delay_bound=1.0, s_low=0.5, s_high=2.0)
        assert model.admits_clock_bounds(0.5, 2.0)
        assert model.admits_clock_bounds(0.8, 1.5)
        assert not model.admits_clock_bounds(0.4, 2.0)
        assert not model.admits_clock_bounds(0.5, 3.0)

    def test_processing_bound_validation(self):
        model = ABEModel(expected_delay_bound=1.0, expected_processing_bound=0.1)
        model.validate_processing(ConstantDelay(0.1))
        with pytest.raises(ModelValidationError):
            model.validate_processing(ConstantDelay(0.2))

    def test_validate_config_end_to_end(self):
        model = ABEModel(expected_delay_bound=1.0)
        good = NetworkConfig(
            topology=unidirectional_ring(4), delay_model=ExponentialDelay(1.0), seed=0
        )
        model.validate_config(good)
        bad = NetworkConfig(
            topology=unidirectional_ring(4), delay_model=ExponentialDelay(2.0), seed=0
        )
        with pytest.raises(ModelValidationError):
            model.validate_config(bad)

    def test_validate_config_with_factory_checks_every_channel(self):
        model = ABEModel(expected_delay_bound=1.0)

        def factory(channel_id, source, destination):
            return ExponentialDelay(0.5 if channel_id < 3 else 5.0)

        config = NetworkConfig(
            topology=unidirectional_ring(4), delay_model=factory, seed=0
        )
        with pytest.raises(ModelValidationError):
            model.validate_config(config)

    def test_contains_abd(self):
        model = ABEModel(expected_delay_bound=3.0)
        assert model.contains_abd(2.0)
        assert not model.contains_abd(4.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ABEModel(expected_delay_bound=0.0)
        with pytest.raises(ValueError):
            ABEModel(expected_delay_bound=1.0, s_low=0.0)
        with pytest.raises(ValueError):
            ABEModel(expected_delay_bound=1.0, expected_processing_bound=-1.0)


class TestABDModel:
    def test_admits_only_hard_bounded_delays(self):
        model = ABDModel(delay_bound=2.0)
        assert model.admits_delay(UniformDelay(0.0, 2.0))
        assert model.admits_delay(ConstantDelay(1.0))
        assert not model.admits_delay(ExponentialDelay(0.5))
        assert not model.admits_delay(UniformDelay(0.0, 3.0))

    def test_truncation_makes_abe_channel_abd_admissible(self):
        model = ABDModel(delay_bound=4.0)
        assert model.admits_delay(TruncatedDelay(ExponentialDelay(1.0), cap=4.0))

    def test_max_delay_adversary_is_admissible(self):
        model = ABDModel(delay_bound=2.0)
        assert model.admits_delay(MaxDelayAdversary(UniformDelay(0.0, 2.0)))

    def test_rejection_message_mentions_unboundedness(self):
        model = ABDModel(delay_bound=2.0)
        with pytest.raises(ModelValidationError, match="unbounded"):
            model.validate_delay(ExponentialDelay(1.0))

    def test_as_abe_inclusion(self):
        abd = ABDModel(delay_bound=2.0, s_low=0.5, s_high=1.5, processing_bound=0.1)
        abe = abd.as_abe()
        assert isinstance(abe, ABEModel)
        assert abe.delta == 2.0
        assert abe.gamma == 0.1
        # Everything ABD admits, the derived ABE model admits too.
        for delay in (ConstantDelay(1.0), UniformDelay(0.5, 2.0)):
            assert abd.admits_delay(delay)
            assert abe.admits_delay(delay)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ABDModel(delay_bound=0.0)
        with pytest.raises(ValueError):
            ABDModel(delay_bound=1.0, s_low=2.0, s_high=1.0)
        with pytest.raises(ValueError):
            ABDModel(delay_bound=1.0, processing_bound=-0.1)


class TestSynchronousAndAsynchronous:
    def test_synchronous_admits_only_unit_round_delay(self):
        model = SynchronousModel()
        assert model.admits_delay(ConstantDelay(1.0))
        assert not model.admits_delay(ConstantDelay(2.0))
        assert not model.admits_delay(UniformDelay(0.5, 1.0))
        assert not model.admits_delay(ExponentialDelay(1.0))

    def test_synchronous_requires_perfect_clocks_and_instant_processing(self):
        model = SynchronousModel()
        assert model.admits_clock_bounds(1.0, 1.0)
        assert not model.admits_clock_bounds(0.9, 1.1)
        with pytest.raises(ModelValidationError):
            model.validate_processing(ConstantDelay(0.5))

    def test_asynchronous_admits_everything(self):
        model = AsynchronousModel()
        for delay in (ConstantDelay(1.0), ExponentialDelay(5.0), ParetoDelay(alpha=0.7)):
            assert model.admits_delay(delay)
        assert model.known_bounds() == {}


class TestModelHierarchy:
    def test_inclusion_order(self):
        sync = SynchronousModel()
        abd = ABDModel(delay_bound=1.0)
        abe = ABEModel(expected_delay_bound=1.0)
        asyn = AsynchronousModel()
        # Weaker models admit everything stronger models admit.
        assert abd.admits_model(sync)
        assert abe.admits_model(abd)
        assert asyn.admits_model(abe)
        assert asyn.admits_model(sync)
        # And not the other way around.
        assert not sync.admits_model(abe)
        assert not abd.admits_model(abe)
        assert not abe.admits_model(asyn)

    def test_every_abd_admissible_delay_is_abe_admissible(self):
        abd = ABDModel(delay_bound=2.0)
        abe = abd.as_abe()
        candidates = [
            ConstantDelay(0.5),
            ConstantDelay(2.0),
            UniformDelay(0.0, 2.0),
            TruncatedDelay(ExponentialDelay(0.7), cap=2.0),
        ]
        for delay in candidates:
            assert abd.admits_delay(delay)
            assert abe.admits_delay(delay)
