"""Tests for the ``abe-repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.command == "elect"
        assert args.n == 32
        assert args.a0 is None

    def test_experiment_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])

    def test_experiment_accepts_overrides(self):
        args = build_parser().parse_args(["experiment", "e4", "--trials", "3", "--seed", "9"])
        assert args.experiment_id == "e4"
        assert args.trials == 3
        assert args.seed == 9


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "abe-repro" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("e1", "e5", "a2"):
            assert experiment_id in output

    def test_elect_command_small_ring(self, capsys):
        exit_code = main(["elect", "--n", "8", "--seed", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "leader elected     : True" in output
        assert "messages sent" in output

    def test_elect_command_with_explicit_a0(self, capsys):
        exit_code = main(["elect", "--n", "6", "--a0", "0.1", "--seed", "1"])
        assert exit_code == 0
        assert "0.1" in capsys.readouterr().out

    def test_experiment_command_runs_e4(self, capsys):
        exit_code = main(["experiment", "e4", "--trials", "1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "E4" in output
        assert "findings:" in output
