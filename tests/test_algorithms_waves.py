"""Tests for flooding, echo and ring traversal (the auxiliary workloads)."""

from __future__ import annotations

import pytest

from repro.algorithms.echo import EchoProgram
from repro.algorithms.flooding import FloodingProgram
from repro.algorithms.traversal import RingTraversalProgram
from repro.network.delays import ConstantDelay, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.topology import (
    bidirectional_ring,
    grid_topology,
    line_topology,
    random_connected,
    star_topology,
    tree_topology,
    unidirectional_ring,
)


def run_flood(topology, seed=0, delay=None):
    config = NetworkConfig(
        topology=topology, delay_model=delay or ConstantDelay(1.0), seed=seed
    )
    network = Network(
        config,
        lambda uid: FloodingProgram(is_initiator=(uid == 0), value="announcement"),
    )
    network.run(max_events=100_000)
    return network


class TestFlooding:
    @pytest.mark.parametrize(
        "topology_builder",
        [
            lambda: bidirectional_ring(8),
            lambda: line_topology(6),
            lambda: star_topology(7),
            lambda: tree_topology(10),
            lambda: grid_topology(3, 3),
            lambda: random_connected(12, 0.3, seed=4),
        ],
    )
    def test_every_node_informed_on_connected_topologies(self, topology_builder):
        network = run_flood(topology_builder())
        assert all(value == "announcement" for value in network.results())

    def test_unidirectional_ring_also_floods(self):
        network = run_flood(unidirectional_ring(7))
        assert all(value == "announcement" for value in network.results())

    def test_message_count_bounded_by_edges(self):
        topology = grid_topology(3, 3)
        network = run_flood(topology)
        # Each node forwards at most once on each outgoing port.
        assert network.messages_sent() <= topology.edge_count + topology.out_degree(0)

    def test_hop_count_matches_distance_on_line(self):
        config = NetworkConfig(
            topology=line_topology(5), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(
            config, lambda uid: FloodingProgram(is_initiator=(uid == 0), value=1)
        )
        network.run(max_events=10_000)
        programs = network.programs()
        assert [p.received_hops for p in programs] == [0, 1, 2, 3, 4]

    def test_rejects_unexpected_payload(self):
        network = run_flood(line_topology(3))
        with pytest.raises(TypeError):
            network.programs()[1].on_receive("junk", 0)


class TestEcho:
    @pytest.mark.parametrize(
        "topology_builder",
        [
            lambda: line_topology(6),
            lambda: star_topology(6),
            lambda: tree_topology(9),
            lambda: grid_topology(3, 3),
            lambda: bidirectional_ring(8),
            lambda: random_connected(10, 0.4, seed=2),
        ],
    )
    def test_initiator_decides_on_connected_topologies(self, topology_builder):
        topology = topology_builder()
        config = NetworkConfig(
            topology=topology, delay_model=ExponentialDelay(0.5), seed=3
        )
        network = Network(
            config, lambda uid: EchoProgram(is_initiator=(uid == 0), wave_id=1)
        )
        network.run(max_events=100_000)
        assert network.programs()[0].decided
        assert network.results()[0] is True

    def test_non_initiators_learn_a_parent(self):
        config = NetworkConfig(
            topology=tree_topology(9), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(config, lambda uid: EchoProgram(is_initiator=(uid == 0)))
        network.run(max_events=10_000)
        for uid, program in enumerate(network.programs()):
            if uid != 0:
                assert program.parent_uid is not None

    def test_message_count_is_two_per_link(self):
        topology = tree_topology(9)
        config = NetworkConfig(topology=topology, delay_model=ConstantDelay(1.0), seed=0)
        network = Network(config, lambda uid: EchoProgram(is_initiator=(uid == 0)))
        network.run(max_events=10_000)
        assert network.messages_sent() == topology.edge_count


class TestRingTraversal:
    def test_single_lap_takes_n_messages(self):
        config = NetworkConfig(
            topology=unidirectional_ring(9), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(
            config, lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=1)
        )
        network.run(max_events=1000)
        assert network.messages_sent() == 9
        assert network.now == pytest.approx(9.0)

    def test_multi_lap_timing_matches_expected_delay(self):
        laps = 5
        config = NetworkConfig(
            topology=unidirectional_ring(6), delay_model=ExponentialDelay(mean=1.0), seed=7
        )
        network = Network(
            config,
            lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=laps),
        )
        network.run(max_events=10_000)
        initiator = network.programs()[0]
        assert initiator.completed_laps == laps
        mean_lap = sum(initiator.lap_times) / len(initiator.lap_times)
        # One lap over 6 channels with mean delay 1 takes about 6 time units.
        assert 2.0 < mean_lap < 14.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RingTraversalProgram(target_laps=0)
