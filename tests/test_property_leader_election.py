"""Property-based correctness of every leader-election algorithm.

Hypothesis drives random ring sizes, seeds and delay models through the ABE
election and all four baselines, asserting the two properties that define
leader election:

* **uniqueness** -- exactly one node ends up leader (``leaders_elected == 1``
  and exactly one program reports itself elected);
* **agreement** -- the shared outcome record names that same node.

Each combination runs with and without ``batch_sampling`` (different
deterministic random streams, same correctness contract).  ``derandomize``
keeps CI stable: the examples are a fixed, seed-independent sweep rather
than a fresh random batch per run.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import build_ring_election
from repro.algorithms.leader_election import (
    ChangRobertsProgram,
    DolevKlaweRodehProgram,
    FranklinProgram,
    ItaiRodehProgram,
)
from repro.core.runner import build_election_network, run_election_on_network
from repro.network.delays import ConstantDelay, ExponentialDelay, UniformDelay

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

ring_sizes = st.integers(min_value=3, max_value=10)
seeds = st.integers(min_value=0, max_value=2**20)
delays = st.sampled_from(
    [ExponentialDelay(mean=1.0), UniformDelay(0.1, 2.0), ConstantDelay(1.0)]
)
batch_sampling = st.booleans()

#: (factory, needs bidirectional ring, needs FIFO, nodes have identifiers)
BASELINES = {
    "chang_roberts": (lambda uid, tally: ChangRobertsProgram(tally), False, False, True),
    "dolev_klawe_rodeh": (
        lambda uid, tally: DolevKlaweRodehProgram(tally),
        False,
        True,
        True,
    ),
    "franklin": (lambda uid, tally: FranklinProgram(tally), True, True, True),
    "itai_rodeh": (lambda uid, tally: ItaiRodehProgram(tally), False, False, False),
}


def _assert_unique_leader_with_agreement(network, decided, leader_uid, leaders_elected):
    assert decided, "no leader elected within the event budget"
    assert leaders_elected == 1, f"{leaders_elected} nodes declared themselves leader"
    elected_uids = [
        node.uid
        for node in network.nodes
        if node.program is not None and node.program.is_leader
    ]
    assert elected_uids == [leader_uid], (
        f"programs electing themselves {elected_uids} disagree with the shared "
        f"outcome record ({leader_uid})"
    )
    assert 0 <= leader_uid < network.n


@pytest.mark.parametrize("algorithm", sorted(BASELINES))
@given(n=ring_sizes, seed=seeds, delay=delays, batched=batch_sampling)
@SETTINGS
def test_baseline_elects_exactly_one_leader(algorithm, n, seed, delay, batched):
    factory, bidirectional, fifo, with_ids = BASELINES[algorithm]
    network, tally = build_ring_election(
        factory,
        n,
        bidirectional=bidirectional,
        fifo=fifo,
        with_identifiers=with_ids,
        delay=delay,
        seed=seed,
        batch_sampling=batched,
    )
    network.run(max_events=500_000 + 50_000 * n)
    _assert_unique_leader_with_agreement(
        network, tally.decided, tally.leader_uid, tally.leaders_elected
    )
    assert network.metrics.count("leaders_elected") == 1


@given(
    n=ring_sizes,
    seed=seeds,
    a0=st.sampled_from([0.1, 0.3, 0.7]),
    delay=delays,
    batched=batch_sampling,
)
@SETTINGS
def test_abe_election_elects_exactly_one_leader(n, seed, a0, delay, batched):
    network, status = build_election_network(
        n, a0=a0, seed=seed, delay=delay, batch_sampling=batched
    )
    result = run_election_on_network(network, status, a0=a0)
    _assert_unique_leader_with_agreement(
        network, result.elected, result.leader_uid, result.leaders_elected
    )
    assert result.hop_overflows == 0
    assert result.messages_total >= n  # the winning wave alone circles the ring
    assert network.metrics.count("ticks") == result.ticks


@given(n=ring_sizes, seed=seeds, a0=st.sampled_from([0.1, 0.3]))
@SETTINGS
def test_abe_election_batch_ticks_preserves_outcomes(n, seed, a0):
    """The shared tick driver elects the same leader at the same time."""
    from dataclasses import asdict

    from repro.core.runner import run_election

    per_node = asdict(run_election(n, a0=a0, seed=seed, batch_ticks=False))
    batched = asdict(run_election(n, a0=a0, seed=seed, batch_ticks=True))
    per_node.pop("events_processed")
    batched.pop("events_processed")
    assert per_node == batched


@given(
    n=ring_sizes,
    seed=seeds,
    initial_rate=st.sampled_from([0.6, 1.0, 1.4]),
    step=st.sampled_from([0.0, 0.1, 0.3]),
)
@SETTINGS
def test_abe_election_batch_ticks_preserves_outcomes_under_drift(
    n, seed, initial_rate, step
):
    """Drift-tolerant bucketing: under random-walk clock drift (random rates,
    steps and seeds) the shared tick driver is bit-identical to per-process
    ticks in everything but the engine's event granularity."""
    from dataclasses import asdict

    from repro.core.runner import run_election
    from repro.sim.clock import RandomWalkDrift

    kwargs = dict(
        a0=0.3,
        seed=seed,
        clock_bounds=(0.5, 2.0),
        clock_drift_factory=lambda uid: RandomWalkDrift(
            initial_rate=initial_rate, step=step
        ),
    )
    per_node = asdict(run_election(n, batch_ticks=False, **kwargs))
    batched = asdict(run_election(n, batch_ticks=True, **kwargs))
    per_node.pop("events_processed")
    batched.pop("events_processed")
    assert per_node == batched
