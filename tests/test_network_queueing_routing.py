"""Unit tests for queueing (case i) and dynamic-routing (case ii) delay models."""

from __future__ import annotations

import random

import pytest

from repro.network.queueing import (
    FifoLinkState,
    MM1SojournDelay,
    mm1_mean_sojourn,
    mm1_utilisation,
)
from repro.network.routing import DynamicRoutingDelay
from repro.network.delays import ConstantDelay


class TestMM1Formulas:
    def test_mean_sojourn(self):
        assert mm1_mean_sojourn(1.0, 2.0) == pytest.approx(1.0)
        assert mm1_mean_sojourn(0.0, 2.0) == pytest.approx(0.5)

    def test_utilisation(self):
        assert mm1_utilisation(1.0, 2.0) == pytest.approx(0.5)

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValueError):
            mm1_mean_sojourn(2.0, 2.0)
        with pytest.raises(ValueError):
            mm1_mean_sojourn(3.0, 2.0)
        with pytest.raises(ValueError):
            mm1_mean_sojourn(-1.0, 2.0)
        with pytest.raises(ValueError):
            mm1_mean_sojourn(1.0, 0.0)


class TestMM1SojournDelay:
    def test_mean_and_unboundedness(self):
        dist = MM1SojournDelay(arrival_rate=1.0, service_rate=2.0)
        assert dist.mean() == pytest.approx(1.0)
        assert dist.bound() is None
        assert dist.has_finite_mean()
        assert dist.utilisation() == pytest.approx(0.5)

    def test_empirical_mean(self, rng):
        dist = MM1SojournDelay(arrival_rate=2.0, service_rate=3.0)
        samples = dist.sample_many(rng, 20_000)
        assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.05)

    def test_load_increases_mean(self):
        light = MM1SojournDelay(0.5, 2.0)
        heavy = MM1SojournDelay(1.9, 2.0)
        assert heavy.mean() > light.mean()


class TestFifoLinkState:
    def test_backlog_delays_later_arrivals(self):
        link = FifoLinkState(service_rate=1.0)
        rng = random.Random(0)
        first = link.delay_for_arrival(0.0, rng)
        # A message arriving immediately afterwards waits behind the first.
        second = link.delay_for_arrival(0.0, rng)
        assert second > 0.0
        assert link.messages_served == 2
        assert second >= first or second > 0  # both positive; second includes backlog

    def test_idle_link_has_pure_service_delay(self):
        link = FifoLinkState(service_rate=1.0)
        rng = random.Random(1)
        delay = link.delay_for_arrival(1000.0, rng)
        assert delay > 0.0

    def test_reset_clears_backlog(self):
        link = FifoLinkState(service_rate=1.0)
        rng = random.Random(2)
        link.delay_for_arrival(0.0, rng)
        link.reset()
        assert link.messages_served == 0

    def test_sample_interface_reports_stable_mean(self):
        link = FifoLinkState(service_rate=4.0, nominal_arrival_rate=2.0)
        assert link.mean() == pytest.approx(mm1_mean_sojourn(2.0, 4.0))
        rng = random.Random(3)
        samples = [link.sample(rng) for _ in range(5000)]
        # Mechanistic FIFO sampling with deterministic arrivals is below the
        # stationary M/M/1 mean (Poisson arrivals are burstier); the declared
        # mean is therefore a valid upper bound, which is all ABE needs.
        assert sum(samples) / len(samples) <= link.mean() * 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            FifoLinkState(service_rate=0.0)
        with pytest.raises(ValueError):
            FifoLinkState(service_rate=1.0, nominal_arrival_rate=2.0)
        link = FifoLinkState(service_rate=1.0)
        with pytest.raises(ValueError):
            link.delay_for_arrival(-1.0, random.Random(0))


class TestDynamicRoutingDelay:
    def test_expected_hops_formula(self):
        dist = DynamicRoutingDelay(base_hops=2, detour_probability=0.5)
        assert dist.expected_hops() == pytest.approx(3.0)
        assert DynamicRoutingDelay(base_hops=4, detour_probability=0.0).expected_hops() == 4.0

    def test_mean_combines_hops_and_per_hop_delay(self):
        dist = DynamicRoutingDelay(
            base_hops=2, detour_probability=0.0, per_hop_delay=ConstantDelay(0.5)
        )
        assert dist.mean() == pytest.approx(1.0)

    def test_sampled_hops_at_least_base(self, rng):
        dist = DynamicRoutingDelay(base_hops=3, detour_probability=0.4)
        assert all(dist.sample_hops(rng) >= 3 for _ in range(500))

    def test_zero_detour_probability_gives_fixed_hops(self, rng):
        dist = DynamicRoutingDelay(base_hops=3, detour_probability=0.0)
        assert all(dist.sample_hops(rng) == 3 for _ in range(100))

    def test_empirical_mean_matches_declared(self, rng):
        dist = DynamicRoutingDelay(base_hops=2, detour_probability=0.3, per_hop_mean=0.5)
        samples = dist.sample_many(rng, 20_000)
        assert sum(samples) / len(samples) == pytest.approx(dist.mean(), rel=0.06)

    def test_unbounded_with_finite_mean(self):
        dist = DynamicRoutingDelay()
        assert dist.bound() is None
        assert dist.has_finite_mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicRoutingDelay(base_hops=0)
        with pytest.raises(ValueError):
            DynamicRoutingDelay(detour_probability=1.0)
        with pytest.raises(ValueError):
            DynamicRoutingDelay(per_hop_mean=0.0)
        with pytest.raises(ValueError):
            DynamicRoutingDelay(max_extra_hops=-1)
