"""The persistent result store: fingerprints, version gating, O(N) appends.

Four properties under test, each of which PR 6's journal got wrong or
lacked:

* **Canonical fingerprints** -- ``spec_fingerprint`` must hash dataclass
  overrides field by field (a ``repr=False`` field must still distinguish
  two specs) and must *refuse* a key (return ``None``) for values whose only
  repr carries a memory address: such a key differs per process, so resume
  could never hit and the cache silently degrades to dead weight.
* **Code-version gating** -- entries recorded under a different
  ``code_version`` are ignored (with a stderr note) so a behaviour-changing
  upgrade forces re-runs instead of mixing stale results into aggregates;
  ``allow_stale`` is the explicit escape hatch.
* **True O(N) journaling** -- ``record``/``record_many`` append exactly the
  new lines (no whole-file rewrite), so journaling N trials writes O(N)
  total bytes.
* **Load robustness + migration** -- torn tails, duplicate ``(key, seed)``
  lines and foreign lines mid-file are tolerated line by line, and a JSONL
  journal migrated into sqlite resumes byte-identically.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field

import pytest

import repro.store.fingerprint as fingerprint_module
from repro.experiments.resilience import CheckpointJournal
from repro.experiments.runner import monte_carlo, trial_seeds
from repro.experiments.workloads import ElectionTrial
from repro.network.delays import ExponentialDelay
from repro.scenarios import ScenarioSpec, run_scenario
from repro.store import (
    JsonlResultStore,
    ResultStore,
    code_version,
    migrate_journal,
    spec_fingerprint,
    study_fingerprint,
)
from repro.scenarios.spec import StudySpec


@dataclass(frozen=True)
class Knob:
    """An override whose distinguishing field is hidden from its repr."""

    visible: int
    hidden: float = field(repr=False, default=0.0)


class Opaque:
    """Default object repr: ``<Opaque object at 0x...>`` -- per-process."""


class AddressDelay(ExponentialDelay):
    """A perfectly runnable delay model with an address-bearing repr."""

    __repr__ = object.__repr__


# ================================================================ fingerprints


class TestSpecFingerprint:
    def test_repr_false_dataclass_fields_still_distinguish_specs(self):
        # Under the old ``default=repr`` canonicalization both specs hashed
        # the same string "Knob(visible=1)" -- one key for two workloads, a
        # wrong cache hit waiting to happen.
        one = ScenarioSpec(params={"knob": Knob(1, hidden=0.25)})
        two = ScenarioSpec(params={"knob": Knob(1, hidden=0.75)})
        assert spec_fingerprint(one) != spec_fingerprint(two)
        assert spec_fingerprint(one) == spec_fingerprint(
            ScenarioSpec(params={"knob": Knob(1, hidden=0.25)})
        )

    def test_address_bearing_repr_refuses_a_key(self):
        # Under the old canonicalization this produced a *different* key in
        # every process; refusing means "skip journaling", never wrong.
        spec = ScenarioSpec(params={"obj": Opaque()})
        assert spec_fingerprint(spec) is None

    def test_stable_reprs_still_fingerprint(self):
        spec = ScenarioSpec(
            params={"election_overrides": {"delay": ExponentialDelay(mean=2.0)}}
        )
        assert spec_fingerprint(spec) is not None
        assert spec_fingerprint(spec) == spec_fingerprint(spec)

    def test_run_scenario_skips_journaling_for_refused_fingerprint(self, tmp_path):
        spec = ScenarioSpec(
            topology={"kind": "uniring", "params": {"n": 4}},
            trials=2,
            params={"delay": AddressDelay(mean=1.0)},
        )
        assert spec_fingerprint(spec) is None
        journal = CheckpointJournal(tmp_path / "journal.jsonl")
        results = run_scenario(spec, checkpoint=journal)
        assert len(results) == 2  # the scenario still runs...
        assert len(journal) == 0  # ...but nothing is cached under a bad key

    def test_study_fingerprint_keys_metric_and_points(self):
        points = (ScenarioSpec(trials=2, label="a"), ScenarioSpec(trials=3, label="b"))
        base = StudySpec(name="s", points=points)
        assert study_fingerprint(base) == study_fingerprint(
            StudySpec(name="renamed", title="presentation only", points=points)
        )
        assert study_fingerprint(base) != study_fingerprint(
            StudySpec(name="s", points=points, metric="election_time")
        )
        refused = StudySpec(
            name="s", points=(ScenarioSpec(params={"obj": Opaque()}),)
        )
        assert study_fingerprint(refused) is None


class TestCodeVersion:
    def test_stamp_carries_package_version_and_golden_hash(self):
        import repro

        stamp = code_version()
        assert stamp.startswith(repro.__version__)
        assert "+g" in stamp  # the goldens content hash
        assert stamp == code_version()

    def test_golden_re_record_bumps_the_stamp(self, monkeypatch):
        import repro

        monkeypatch.setattr(fingerprint_module, "_CODE_VERSION", None)
        monkeypatch.setattr(fingerprint_module, "_goldens_digest", lambda: "cafe12345678")
        assert fingerprint_module.code_version() == f"{repro.__version__}+gcafe12345678"


# ============================================================= version gating


@pytest.mark.parametrize("filename", ["journal.jsonl", "store.sqlite"])
class TestVersionGating:
    def test_version_bump_forces_reruns(self, tmp_path, monkeypatch, capsys, filename):
        path = tmp_path / filename
        journal = CheckpointJournal(path)
        journal.record("key", 1, {"metric": 1.5})
        assert journal.lookup("key", [1]) == {1: {"metric": 1.5}}

        monkeypatch.setattr(
            fingerprint_module, "code_version", lambda: "99.0.0+gdeadbeefdead"
        )
        upgraded = CheckpointJournal(path, resume=True)
        capsys.readouterr()  # drop load-time output; the note is checked below
        assert upgraded.lookup("key", [1]) == {}  # stale entry ignored -> re-run
        assert ("key", 1) not in upgraded
        assert upgraded.stale_ignored == 1

    def test_stale_entries_are_noted_on_stderr(self, tmp_path, monkeypatch, capsys, filename):
        path = tmp_path / filename
        CheckpointJournal(path).record("key", 1, {"metric": 1.5})
        monkeypatch.setattr(
            fingerprint_module, "code_version", lambda: "99.0.0+gdeadbeefdead"
        )
        CheckpointJournal(path, resume=True)
        err = capsys.readouterr().err
        assert "different code version" in err
        assert "--allow-stale-cache" in err

    def test_allow_stale_escape_hatch_serves_old_entries(self, tmp_path, monkeypatch, filename):
        path = tmp_path / filename
        CheckpointJournal(path).record("key", 1, {"metric": 1.5})
        monkeypatch.setattr(
            fingerprint_module, "code_version", lambda: "99.0.0+gdeadbeefdead"
        )
        stale_ok = CheckpointJournal(path, resume=True, allow_stale=True)
        assert stale_ok.lookup("key", [1]) == {1: {"metric": 1.5}}

    def test_rerun_re_records_under_the_current_version(self, tmp_path, monkeypatch, filename):
        path = tmp_path / filename
        CheckpointJournal(path).record("key", 1, {"metric": 1.5})
        monkeypatch.setattr(
            fingerprint_module, "code_version", lambda: "99.0.0+gdeadbeefdead"
        )
        upgraded = CheckpointJournal(path, resume=True)
        assert upgraded.record("key", 1, {"metric": 2.5})  # the forced re-run
        fresh = CheckpointJournal(path, resume=True)
        assert fresh.lookup("key", [1]) == {1: {"metric": 2.5}}


class TestAllowStaleCLIWiring:
    def test_flag_threads_into_the_policy_journal(self, tmp_path):
        from repro.cli import build_parser
        from repro.experiments.runner import execution_policy_from_args

        path = tmp_path / "journal.jsonl"
        args = build_parser().parse_args(
            ["scenario", "spec.json", "--checkpoint", str(path), "--allow-stale-cache"]
        )
        policy = execution_policy_from_args(args)
        assert policy.checkpoint.allow_stale is True
        args = build_parser().parse_args(
            ["scenario", "spec.json", "--checkpoint", str(path)]
        )
        assert execution_policy_from_args(args).checkpoint.allow_stale is False


# ============================================================== append-only IO


class TestAppendOnlyJournal:
    def test_records_never_rewrite_the_file(self, tmp_path, monkeypatch):
        journal = CheckpointJournal(tmp_path / "journal.jsonl")

        def forbid(*args, **kwargs):
            raise AssertionError("record must append, not rewrite the whole file")

        # The PR 6 implementation funnelled every record through a tmp-file
        # rewrite + os.replace; append-only recording never needs either.
        monkeypatch.setattr(os, "replace", forbid)
        deltas = []
        size = 0
        for seed in range(48):
            journal.record("key", seed, {"metric": float(seed)})
            new_size = os.path.getsize(journal.path)
            deltas.append(new_size - size)
            size = new_size
        # O(N) total bytes: the file grew by exactly the appended lines...
        assert journal.bytes_written == size
        # ...and each record's cost is O(1) -- independent of journal length
        # (under the old rewrite scheme the last delta would be ~48x the
        # first's write volume).
        assert max(deltas) <= 2 * min(deltas)

    def test_record_many_appends_one_batch(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "journal.jsonl")
        pairs = [(seed, {"metric": float(seed)}) for seed in range(10)]
        assert journal.record_many("key", pairs) == 10
        assert journal.record_many("key", pairs) == 0  # idempotent
        with open(journal.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 10
        assert all(json.loads(line)["version"] == code_version() for line in lines)

    def test_fresh_start_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("key", 1, {"metric": 1.0})
        fresh = CheckpointJournal(path)  # resume=False
        assert len(fresh) == 0
        assert os.path.getsize(path) == 0


class TestJournalLoadEdgeCases:
    def _lines(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            return handle.readlines()

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        journal.record_many("key", [(1, {"m": 1.0}), (2, {"m": 2.0})])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "key", "seed": 3, "result"')  # crash mid-append
        resumed = CheckpointJournal(path, resume=True)
        assert resumed.lookup("key", [1, 2, 3]) == {1: {"m": 1.0}, 2: {"m": 2.0}}
        assert resumed.backend.skipped_lines == 1

    def test_foreign_line_mid_file_loses_only_itself(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        journal.record("key", 1, {"m": 1.0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("-- operator scribble, not JSON --\n")
            handle.write(json.dumps({"unrelated": "document"}) + "\n")
        CheckpointJournal(path, resume=True).record("key", 2, {"m": 2.0})
        resumed = CheckpointJournal(path, resume=True)
        # Entries on *both* sides of the damage survive (the PR 6 loader
        # stopped at the first bad line, silently dropping everything after).
        assert resumed.lookup("key", [1, 2]) == {1: {"m": 1.0}, 2: {"m": 2.0}}
        assert resumed.backend.skipped_lines == 2

    def test_duplicate_key_seed_lines_last_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        version = code_version()
        with open(path, "w", encoding="utf-8") as handle:
            for value in (1.0, 2.0, 3.0):
                handle.write(
                    json.dumps(
                        {"key": "key", "seed": 7, "result": {"m": value}, "version": version}
                    )
                    + "\n"
                )
        resumed = CheckpointJournal(path, resume=True)
        assert len(resumed) == 1
        assert resumed.lookup("key", [7]) == {7: {"m": 3.0}}


# ================================================================ sqlite store


class TestResultStore:
    def test_round_trip_and_persistence(self, tmp_path):
        path = tmp_path / "results.sqlite"
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        result = trial(123)
        with ResultStore(path) as store:
            assert store.record("key", 123, result)
            assert not store.record("key", 123, result)  # idempotent
            assert ("key", 123) in store
        with ResultStore(path) as reopened:  # not fresh: the cache persists
            assert len(reopened) == 1
            assert reopened.lookup("key", [123]) == {123: result}
            assert reopened.lookup("key", [124]) == {}
            assert reopened.hits == 1 and reopened.misses == 1

    def test_fresh_discards_existing_content(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path) as store:
            store.record("key", 1, {"m": 1.0})
        with ResultStore(path, fresh=True) as fresh:
            assert len(fresh) == 0

    def test_checkpoint_journal_dispatches_on_suffix(self, tmp_path):
        assert CheckpointJournal(tmp_path / "a.jsonl").kind == "jsonl"
        assert CheckpointJournal(tmp_path / "b.sqlite").kind == "sqlite"
        assert CheckpointJournal(tmp_path / "c.db").kind == "sqlite"
        assert isinstance(CheckpointJournal(tmp_path / "d.sqlite3").backend, ResultStore)

    def test_monte_carlo_resumes_from_sqlite_checkpoint(self, tmp_path):
        path = tmp_path / "checkpoint.sqlite"
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        first = monte_carlo(
            trial, trials=4, base_seed=9,
            checkpoint=CheckpointJournal(path), checkpoint_key="point",
        )

        def bomb(seed):
            raise AssertionError("resume must not re-run completed trials")

        resumed = monte_carlo(
            bomb, trials=4, base_seed=9,
            checkpoint=CheckpointJournal(path, resume=True), checkpoint_key="point",
        )
        assert resumed == first


# =================================================================== migration


class TestMigration:
    def test_jsonl_to_sqlite_resumes_byte_identically(self, tmp_path):
        journal_path = tmp_path / "old.jsonl"
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        first = monte_carlo(
            trial, trials=4, base_seed=9,
            checkpoint=CheckpointJournal(journal_path), checkpoint_key="point",
        )
        with ResultStore(tmp_path / "new.sqlite") as store:
            report = migrate_journal(journal_path, store)
            assert report.migrated == 4 and report.duplicates == 0

            def bomb(seed):
                raise AssertionError("migrated store must satisfy every lookup")

            resumed = monte_carlo(
                bomb, trials=4, base_seed=9, checkpoint=store, checkpoint_key="point"
            )
        assert resumed == first  # bit-identical aggregates through sqlite

    def test_versionless_pr6_lines_migrate_as_unversioned(self, tmp_path, capsys):
        journal_path = tmp_path / "old.jsonl"
        seeds = trial_seeds(9, 2)
        with open(journal_path, "w", encoding="utf-8") as handle:
            for seed in seeds:  # the PR 6 line shape: no "version" field
                handle.write(
                    json.dumps({"key": "point", "seed": seed, "result": {"m": 1.0}}) + "\n"
                )
        store_path = tmp_path / "new.sqlite"
        with ResultStore(store_path) as store:
            report = migrate_journal(journal_path, store)
            assert report.migrated == 2
            assert store.counts_by_version() == {"unversioned": 2}
            # Unversioned entries are visible but never silently served...
            assert store.lookup("point", seeds) == {}
        capsys.readouterr()
        with ResultStore(store_path, allow_stale=True) as store:
            # ...unless the operator opts in.
            assert len(store.lookup("point", seeds)) == 2

    def test_assume_version_promotes_versionless_lines(self, tmp_path):
        journal_path = tmp_path / "old.jsonl"
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": "k", "seed": 1, "result": {"m": 1.0}}) + "\n")
            handle.write("torn line that does not parse\n")
        with ResultStore(tmp_path / "new.sqlite") as store:
            report = migrate_journal(journal_path, store, assume_version=code_version())
            assert report.migrated == 1 and report.skipped_lines == 1
            assert store.lookup("k", [1]) == {1: {"m": 1.0}}  # served as current
