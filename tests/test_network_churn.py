"""Tests for the scripted dynamic-network fault layer (repro.network.churn).

Covers the event vocabulary (validation, expansion, quiescence analysis) and
the schedule-aware injector's defining property: it can *reverse* what it
applies -- crashed nodes deliver again after recovery and cut links restore
their saved delivery path.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.traversal import RingTraversalProgram
from repro.network.churn import (
    CrashEvent,
    FaultScript,
    LinkDownEvent,
    LinkUpEvent,
    PeriodicChurn,
    RecoverEvent,
    ScheduledFaultInjector,
)
from repro.network.delays import ConstantDelay
from repro.network.network import Network, NetworkConfig
from repro.network.topology import unidirectional_ring


def traversal_network(n=6, seed=0):
    config = NetworkConfig(
        topology=unidirectional_ring(n), delay_model=ConstantDelay(1.0), seed=seed
    )
    return Network(
        config, lambda uid: RingTraversalProgram(is_initiator=(uid == 0), target_laps=50)
    )


class TestEventValidation:
    def test_negative_times_rejected(self):
        for bad in (
            lambda: CrashEvent(node=0, time=-1.0),
            lambda: RecoverEvent(node=0, time=-0.5),
            lambda: LinkDownEvent(channel=0, time=-2.0),
            lambda: LinkUpEvent(channel=0, time=-2.0),
        ):
            with pytest.raises(ValueError):
                bad()

    def test_symbolic_target_must_be_leader(self):
        CrashEvent(node="leader", time=1.0, downtime=5.0)  # ok
        with pytest.raises(ValueError):
            CrashEvent(node="follower", time=1.0)

    def test_nonpositive_downtime_and_duration_rejected(self):
        with pytest.raises(ValueError):
            CrashEvent(node=0, time=1.0, downtime=0.0)
        with pytest.raises(ValueError):
            LinkDownEvent(channel=0, time=1.0, duration=-1.0)

    def test_periodic_churn_validation(self):
        with pytest.raises(ValueError):
            PeriodicChurn(interval=0.0, count=1, downtime=1.0)
        with pytest.raises(ValueError):
            PeriodicChurn(interval=1.0, count=-1, downtime=1.0)
        with pytest.raises(ValueError):
            PeriodicChurn(interval=1.0, count=1, downtime=0.0)
        with pytest.raises(ValueError):
            PeriodicChurn(interval=1.0, count=1, downtime=1.0, target="victim")

    def test_script_rejects_unknown_event(self):
        with pytest.raises(ValueError):
            FaultScript(events=("not-an-event",))
        with pytest.raises(ValueError):
            FaultScript(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            FaultScript(leader_timeout=-1.0)


class TestScriptExpansion:
    def test_expand_sorts_by_time(self):
        script = FaultScript(
            events=(
                LinkDownEvent(channel=0, time=9.0, duration=1.0),
                CrashEvent(node=1, time=2.0, downtime=3.0),
                RecoverEvent(node=2, time=5.0),
            )
        )
        times = [e.time for e in script.expand(4, random.Random(0))]
        assert times == sorted(times)

    def test_periodic_expansion_is_seed_deterministic(self):
        churn = PeriodicChurn(interval=10.0, count=4, downtime=2.0, start=1.0)
        script = FaultScript(events=(churn,))
        a = script.expand(8, random.Random(7))
        b = script.expand(8, random.Random(7))
        assert a == b
        assert len(a) == 4
        assert all(isinstance(e, CrashEvent) and e.downtime == 2.0 for e in a)
        assert all(e.time >= 1.0 for e in a)
        assert all(isinstance(e.node, int) and 0 <= e.node < 8 for e in a)
        # A different stream realizes a different schedule.
        assert script.expand(8, random.Random(8)) != a

    def test_periodic_leader_target_stays_symbolic(self):
        churn = PeriodicChurn(interval=5.0, count=3, downtime=1.0, target="leader")
        events = FaultScript(events=(churn,)).expand(8, random.Random(0))
        assert all(e.node == "leader" for e in events)


class TestQuiescence:
    def test_crash_with_downtime_is_quiescent(self):
        assert FaultScript(
            events=(CrashEvent(node=0, time=1.0, downtime=2.0),)
        ).eventually_quiescent

    def test_crash_with_later_recover_is_quiescent(self):
        script = FaultScript(
            events=(
                CrashEvent(node=0, time=1.0),
                RecoverEvent(node=0, time=4.0),
            )
        )
        assert script.eventually_quiescent

    def test_unrecovered_crash_is_not_quiescent(self):
        assert not FaultScript(events=(CrashEvent(node=0, time=1.0),)).eventually_quiescent
        # A recover for a *different* node does not help.
        script = FaultScript(
            events=(CrashEvent(node=0, time=1.0), RecoverEvent(node=1, time=4.0))
        )
        assert not script.eventually_quiescent

    def test_symbolic_crash_without_downtime_is_not_quiescent(self):
        assert not FaultScript(
            events=(CrashEvent(node="leader", time=1.0),)
        ).eventually_quiescent

    def test_link_down_quiescence(self):
        assert FaultScript(
            events=(LinkDownEvent(channel=0, time=1.0, duration=2.0),)
        ).eventually_quiescent
        assert FaultScript(
            events=(
                LinkDownEvent(channel=0, time=1.0),
                LinkUpEvent(channel=0, time=3.0),
            )
        ).eventually_quiescent
        assert not FaultScript(
            events=(LinkDownEvent(channel=0, time=1.0),)
        ).eventually_quiescent

    def test_periodic_churn_is_always_quiescent(self):
        assert FaultScript(
            events=(PeriodicChurn(interval=1.0, count=10, downtime=1.0),)
        ).eventually_quiescent


class TestScheduledInjector:
    def test_install_schedules_and_counts_pending(self):
        network = traversal_network(seed=1)
        script = FaultScript(
            events=(
                CrashEvent(node=3, time=2.0, downtime=5.0),
                LinkDownEvent(channel=1, time=4.0, duration=3.0),
            )
        )
        injector = ScheduledFaultInjector(network, script)
        assert injector.install() == 2
        assert injector.pending == 2
        assert not injector.quiescent
        network.run(until=30.0, max_events=5000)
        assert injector.pending == 0
        assert injector.quiescent
        assert injector.crashes_applied == 1
        assert injector.recoveries == 1
        assert injector.link_outages == 1

    def test_reinstall_rejected(self):
        network = traversal_network()
        injector = ScheduledFaultInjector(network, FaultScript())
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()

    def test_unknown_node_and_channel_rejected(self):
        network = traversal_network(n=4)
        bad_node = ScheduledFaultInjector(
            network, FaultScript(events=(CrashEvent(node=9, time=1.0, downtime=1.0),))
        )
        with pytest.raises(ValueError):
            bad_node.install()
        network = traversal_network(n=4)
        bad_link = ScheduledFaultInjector(
            network, FaultScript(events=(LinkDownEvent(channel=99, time=1.0),))
        )
        with pytest.raises(ValueError):
            bad_link.install()

    def test_crash_is_reversed_on_recovery(self):
        network = traversal_network(seed=2)
        script = FaultScript(
            events=(
                CrashEvent(node=2, time=3.0),
                RecoverEvent(node=2, time=10.0),
            )
        )
        injector = ScheduledFaultInjector(network, script)
        injector.install()
        network.run(until=6.0, max_events=5000)
        node = network.nodes[2]
        assert injector.nodes_crashed == [2]
        assert "deliver" in node.__dict__  # swallow installed
        network.run(until=30.0, max_events=5000)
        # nodes_crashed means *currently* crashed under the scheduled injector.
        assert injector.nodes_crashed == []
        assert "deliver" not in node.__dict__  # class method restored
        assert len(network.tracer.filter(category="recover")) == 1

    def test_recover_of_live_node_is_noop(self):
        network = traversal_network(seed=3)
        script = FaultScript(events=(RecoverEvent(node=1, time=2.0),))
        injector = ScheduledFaultInjector(network, script)
        injector.install()
        network.run(until=10.0, max_events=5000)
        assert injector.recoveries == 0
        assert injector.quiescent

    def test_crash_of_already_crashed_node_is_noop(self):
        network = traversal_network(seed=4)
        script = FaultScript(
            events=(
                CrashEvent(node=3, time=2.0, downtime=50.0),
                CrashEvent(node=3, time=4.0, downtime=50.0),
            )
        )
        injector = ScheduledFaultInjector(network, script)
        injector.install()
        network.run(until=20.0, max_events=5000)
        assert injector.crashes_applied == 1
        assert injector.nodes_crashed == [3]
        assert network.metrics.count("nodes_crashed") == 1

    def test_link_outage_drops_only_messages_sent_during_it(self):
        # The token crosses channel 0 (node 0 -> 1) once per lap.  Cutting it
        # mid-run kills the token; restoring it does not resurrect the loss.
        network = traversal_network(seed=5)
        script = FaultScript(
            events=(
                LinkDownEvent(channel=0, time=7.5),
                LinkUpEvent(channel=0, time=12.5),
            )
        )
        injector = ScheduledFaultInjector(network, script)
        injector.install()
        network.run(until=40.0, max_events=5000)
        assert injector.link_outages == 1
        assert injector.messages_dropped >= 1
        assert len(network.tracer.filter(category="link-down")) == 1
        assert len(network.tracer.filter(category="link-up")) == 1
        saved = injector._link_saved
        assert saved == {}  # reversal consumed the saved delivery path

    def test_double_link_down_saves_original_path_once(self):
        network = traversal_network(seed=6)
        script = FaultScript(
            events=(
                LinkDownEvent(channel=2, time=1.0),
                LinkDownEvent(channel=2, time=2.0),
                LinkUpEvent(channel=2, time=5.0),
            )
        )
        injector = ScheduledFaultInjector(network, script)
        injector.install()
        network.run(until=10.0, max_events=5000)
        assert injector.link_outages == 1  # second down was a no-op
        channel = network.channels[2]
        assert channel._deliver.__self__ is channel  # bound method restored
