"""The DSE driver: caching, determinism, early killing, CLI surface."""

from __future__ import annotations

import json
import os

import pytest

from repro.dse import SearchSpec, load_search, run_search
from repro.dse.report import comparison_svg
from repro.scenarios.spec import ScenarioSpec, StudySpec
from repro.store.result_store import ResultStore
from repro.store.service import StudyService

#: 2 x 2 exhaustive space over a tiny ring: four configurations total.
SEARCH = {
    "name": "probe",
    "metric": "messages_total",
    "goal": "min",
    "seed": 13,
    "trials": 4,
    "space": {
        "base": {
            "algorithm": "abe-election",
            "topology": {"kind": "uniring", "params": {"n": 4}},
            "seed": 5,
            "trials": 4,
        },
        "dimensions": [
            {"name": "n", "kind": "int-range", "field": "topology.params.n", "low": 4, "high": 6, "step": 2},
            {"name": "a0", "kind": "categorical", "field": "a0", "choices": [0.2, 0.4]},
        ],
    },
    "strategy": {"kind": "grid"},
}


def _search(**overrides):
    data = dict(SEARCH)
    data.update(overrides)
    return SearchSpec.from_dict(data)


def _store(tmp_path, name="store.sqlite"):
    return ResultStore(os.path.join(str(tmp_path), name))


class TestOptimizer:
    def test_grid_search_finds_the_best_point(self, tmp_path):
        report = run_search(_search(), _store(tmp_path))
        (group,) = report.groups
        values = [point.value for point in group.rounds[0].points]
        assert group.winner.value == min(values)
        assert group.evaluations() == 4
        assert report.trials_executed == 4 * 4 + 4  # grid + baseline

    def test_successive_halving_matches_grid_winner_with_fewer_trials(self, tmp_path):
        grid_report = run_search(_search(), _store(tmp_path, "grid.sqlite"))
        sh_report = run_search(
            _search(
                strategy={
                    "kind": "successive-halving",
                    "params": {"candidates": 4, "eta": 2, "base_trials": 1, "rungs": 3},
                }
            ),
            _store(tmp_path, "sh.sqlite"),
        )
        # Same winner as exhaustive search at full budget...
        assert sh_report.groups[0].winner.label == grid_report.groups[0].winner.label
        # ...while executing measurably fewer trials (4+2+1 rung seeds = 7
        # unique vs 16 for the grid; the shared baseline costs 4 each).
        assert sh_report.trials_executed < grid_report.trials_executed
        budgets = [r.budget for r in sh_report.groups[0].rounds]
        assert budgets == [1, 2, 4]

    def test_warm_store_rerun_executes_zero_trials_and_is_byte_identical(self, tmp_path):
        cold = run_search(_search(), _store(tmp_path))
        warm = run_search(_search(), _store(tmp_path))
        assert cold.trials_executed > 0
        assert warm.trials_executed == 0
        assert warm.hits == warm.lookups > 0
        cold_groups = json.dumps([g.to_dict() for g in cold.groups], sort_keys=True)
        warm_groups = json.dumps([g.to_dict() for g in warm.groups], sort_keys=True)
        assert cold_groups == warm_groups
        assert comparison_svg(cold) == comparison_svg(warm)

    def test_serial_and_pooled_runs_are_byte_identical(self, tmp_path):
        serial = run_search(_search(), _store(tmp_path, "serial.sqlite"), workers=1)
        pooled = run_search(_search(), _store(tmp_path, "pooled.sqlite"), workers=2)
        assert json.dumps([g.to_dict() for g in serial.groups], sort_keys=True) == json.dumps(
            [g.to_dict() for g in pooled.groups], sort_keys=True
        )

    def test_successive_halving_is_deterministic_for_a_seed(self, tmp_path):
        search = _search(
            strategy={
                "kind": "successive-halving",
                "params": {"candidates": 4, "eta": 2, "base_trials": 1, "rungs": 2},
            }
        )
        first = run_search(search, _store(tmp_path, "a.sqlite"))
        second = run_search(search, _store(tmp_path, "b.sqlite"))
        assert first.groups[0].winner.label == second.groups[0].winner.label
        assert json.dumps([g.to_dict() for g in first.groups], sort_keys=True) == json.dumps(
            [g.to_dict() for g in second.groups], sort_keys=True
        )

    def test_rung_promotion_reuses_lower_rung_seeds(self, tmp_path):
        # 4 candidates at budgets 1,2,4: rung r+1 re-evaluates survivors, but
        # only the newly added seeds execute (trials-independent store keys).
        search = _search(
            strategy={
                "kind": "successive-halving",
                "params": {"candidates": 4, "eta": 2, "base_trials": 1, "rungs": 3},
            }
        )
        report = run_search(search, _store(tmp_path))
        # unique work: 4 configs x 1 + 2 configs x (2-1) + 1 config x (4-2)
        # + baseline at 4 trials
        assert report.trials_executed == 4 + 2 + 2 + 4
        assert report.hits == 2 * 1 + 1 * 2  # promoted rungs re-serve old seeds

    def test_groups_search_independently(self, tmp_path):
        search = _search(
            groups=[
                {"label": "n4", "overrides": {"topology": {"kind": "uniring", "params": {"n": 4}}}},
                {"label": "n6", "overrides": {"topology": {"kind": "uniring", "params": {"n": 6}}}},
            ]
        )
        report = run_search(search, _store(tmp_path))
        assert [group.label for group in report.groups] == ["n4", "n6"]
        assert all(group.baseline.value is not None for group in report.groups)

    def test_maximization_flips_the_ranking(self, tmp_path):
        report = run_search(_search(goal="max"), _store(tmp_path))
        (group,) = report.groups
        values = [point.value for point in group.rounds[0].points]
        assert group.winner.value == max(values)


class TestServiceRoundDedupe:
    def test_overlapping_rounds_report_zero_executed_for_repeats(self, tmp_path):
        """Regression: a later search round re-submitting configurations the
        store has already evaluated reports ``trials_executed == 0`` for the
        repeated points -- the cross-round dedupe the optimizer relies on."""
        base = {
            "algorithm": "abe-election",
            "topology": {"kind": "uniring", "params": {"n": 4}},
            "seed": 5,
            "trials": 3,
        }
        point_a = ScenarioSpec.from_dict(dict(base, a0=0.2, label="a"))
        point_b = ScenarioSpec.from_dict(dict(base, a0=0.3, label="b"))
        point_c = ScenarioSpec.from_dict(dict(base, a0=0.4, label="c"))
        with _store(tmp_path) as store, StudyService(store) as service:
            service.submit(StudySpec(name="round0", points=(point_a, point_b)))
            (first,) = service.run_pending()
            assert first.trials_executed == 6
            service.submit(StudySpec(name="round1", points=(point_b, point_c)))
            (second,) = service.run_pending()
            repeated, fresh = second.points
            assert repeated.label == "b"
            assert repeated.executed == 0  # served entirely from the store
            assert repeated.hits == 3
            assert fresh.executed == 3

    def test_budget_growth_executes_only_new_seeds(self, tmp_path):
        base = {
            "algorithm": "abe-election",
            "topology": {"kind": "uniring", "params": {"n": 4}},
            "seed": 5,
            "a0": 0.2,
            "label": "grow",
        }
        small = ScenarioSpec.from_dict(dict(base, trials=2))
        large = ScenarioSpec.from_dict(dict(base, trials=5))
        with _store(tmp_path) as store, StudyService(store) as service:
            service.submit(StudySpec(name="small", points=(small,)))
            service.submit(StudySpec(name="large", points=(large,)))
            small_report, large_report = service.run_pending()
            assert small_report.trials_executed == 2
            assert large_report.trials_executed == 3  # only the 3 new seeds
            assert large_report.hits == 2


class TestCli:
    def test_optimize_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        search_path = os.path.join(str(tmp_path), "search.json")
        with open(search_path, "w", encoding="utf-8") as handle:
            json.dump(SEARCH, handle)
        out_dir = os.path.join(str(tmp_path), "out")
        assert main(["optimize", search_path, "--out", out_dir]) == 0
        captured = capsys.readouterr()
        assert "winner" in captured.out
        assert "probe" in captured.out
        report = json.load(open(os.path.join(out_dir, "report.json")))
        assert report["groups"][0]["winner"]["value"] is not None
        svg = open(os.path.join(out_dir, "comparison.svg")).read()
        assert svg.startswith("<svg")
        # Warm CLI re-run: zero trials executed, byte-identical groups block.
        assert main(["optimize", search_path, "--out", out_dir]) == 0
        warm = json.load(open(os.path.join(out_dir, "report.json")))
        assert warm["cache"]["trials_executed"] == 0
        assert warm["groups"] == report["groups"]

    def test_optimize_rejects_bad_search_files(self, tmp_path):
        from repro.cli import main

        bad = os.path.join(str(tmp_path), "bad.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("{\"name\": \"x\"}")
        with pytest.raises(SystemExit, match="space"):
            main(["optimize", bad, "--out", os.path.join(str(tmp_path), "out")])

    def test_export_store_csv(self, tmp_path, capsys):
        from repro.cli import main

        store_path = os.path.join(str(tmp_path), "store.sqlite")
        run_search(_search(), ResultStore(store_path))
        assert main(["export-store", store_path]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = lines[0].split(",")
        assert header[:4] == ["key", "seed", "version", "created_at"]
        assert "messages_total" in header
        assert len(lines) > 1
        csv_path = os.path.join(str(tmp_path), "rows.csv")
        assert main(["export-store", store_path, "--csv", csv_path]) == 0
        assert open(csv_path).read().splitlines()[0] == lines[0]

    def test_export_store_missing_file_fails(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no such store"):
            main(["export-store", os.path.join(str(tmp_path), "nope.sqlite")])

    def test_list_names_strategies_and_dimension_kinds(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "successive-halving" in out
        assert "log-uniform" in out
        assert "search strategies" in out
