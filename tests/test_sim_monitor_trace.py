"""Unit tests for metric collection and structured tracing."""

from __future__ import annotations

import pytest

from repro.sim.monitor import Counter, MetricsCollector, TimeSeries
from repro.sim.trace import TraceEvent, Tracer


class TestCounter:
    def test_increment_defaults_to_one(self):
        counter = Counter("messages")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == 3.5
        assert int(counter) == 3
        assert float(counter) == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("messages")
        with pytest.raises(ValueError):
            counter.increment(-1.0)


class TestTimeSeries:
    def test_record_and_read_back(self):
        series = TimeSeries("active")
        series.record(0.0, 3)
        series.record(1.5, 2)
        assert series.times() == [0.0, 1.5]
        assert series.values() == [3, 2]
        assert series.last() == (1.5, 2)
        assert len(series) == 2

    def test_out_of_order_samples_rejected(self):
        series = TimeSeries("active")
        series.record(2.0, 1)
        with pytest.raises(ValueError):
            series.record(1.0, 1)

    def test_value_at_uses_step_interpolation(self):
        series = TimeSeries("active")
        series.record(0.0, 10)
        series.record(5.0, 20)
        assert series.value_at(-1.0) is None
        assert series.value_at(0.0) == 10
        assert series.value_at(4.99) == 10
        assert series.value_at(5.0) == 20
        assert series.value_at(100.0) == 20


class TestMetricsCollector:
    def test_counters_created_on_demand(self):
        metrics = MetricsCollector()
        metrics.increment("sends")
        metrics.increment("sends", 2)
        assert metrics.count("sends") == 3
        assert metrics.count("never-touched") == 0

    def test_counters_snapshot(self):
        metrics = MetricsCollector()
        metrics.increment("a")
        metrics.increment("b", 4)
        assert metrics.counters() == {"a": 1, "b": 4}

    def test_series_shorthand(self):
        metrics = MetricsCollector()
        metrics.record("queue", 0.0, 1)
        metrics.record("queue", 2.0, 3)
        assert metrics.series("queue").values() == [1, 3]
        assert "queue" in metrics.all_series()

    def test_marks(self):
        metrics = MetricsCollector()
        metrics.mark("leader", 12.5)
        assert metrics.mark_time("leader") == 12.5
        assert metrics.mark_time("missing") is None
        assert metrics.marks() == {"leader": 12.5}

    def test_merge_counters(self):
        a = MetricsCollector()
        b = MetricsCollector()
        a.increment("x", 2)
        b.increment("x", 3)
        b.increment("y", 1)
        a.merge_counters_from(b)
        assert a.count("x") == 5
        assert a.count("y") == 1

    def test_summary_combines_counters_and_marks(self):
        metrics = MetricsCollector()
        metrics.increment("sends", 7)
        metrics.mark("done", 3.0)
        summary = metrics.summary()
        assert summary["sends"] == 7
        assert summary["mark:done"] == 3.0


class TestTracer:
    def test_record_and_filter(self):
        tracer = Tracer()
        tracer.record(0.0, "send", 1, to=2)
        tracer.record(1.0, "deliver", 2, sender=1)
        tracer.record(2.0, "send", 2, to=3)
        assert len(tracer) == 3
        assert tracer.count("send") == 2
        assert [e.subject for e in tracer.filter(category="send")] == [1, 2]
        assert tracer.filter(subject=2, category="deliver")[0].details["sender"] == 1
        assert tracer.filter(predicate=lambda e: e.time > 0.5)[-1].category == "send"

    def test_first_and_last(self):
        tracer = Tracer()
        tracer.record(0.0, "state", 1, state="idle")
        tracer.record(5.0, "state", 1, state="leader")
        assert tracer.first("state").details["state"] == "idle"
        assert tracer.last("state").details["state"] == "leader"
        assert tracer.first("missing") is None
        assert tracer.last("missing") is None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0.0, "send", 1)
        assert len(tracer) == 0

    def test_max_events_limit(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            tracer.record(float(index), "send", index)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_subjects_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.record(0.0, "send", "b")
        tracer.record(1.0, "send", "a")
        tracer.record(2.0, "send", "b")
        assert tracer.subjects() == ["b", "a"]

    def test_to_dicts_and_describe(self):
        tracer = Tracer()
        tracer.record(1.0, "decide", 3, hop=8)
        rows = tracer.to_dicts()
        assert rows == [{"time": 1.0, "category": "decide", "subject": 3, "hop": 8}]
        text = tracer.describe()
        assert "decide" in text and "hop=8" in text
        assert "more events" not in tracer.describe(limit=5)
        tracer.record(2.0, "decide", 4)
        assert "more events" in tracer.describe(limit=1)

    def test_trace_event_describe_format(self):
        event = TraceEvent(time=1.5, category="send", subject=7, details={"to": 8})
        assert "send" in event.describe()
        assert "to=8" in event.describe()
