"""Smoke tests: every example script runs successfully as a subprocess.

The examples are part of the public deliverable; these tests keep them from
rotting as the library evolves.  Each example is executed with reduced inputs
where it accepts them (the quickstart takes the ring size and seed on the
command line) and must exit with status 0.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} is missing"
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        completed = run_example("quickstart.py", "12", "3")
        assert completed.returncode == 0, completed.stderr
        assert "leader elected   : True" in completed.stdout
        assert "all passed" in completed.stdout

    def test_sensor_network_retransmission(self):
        completed = run_example("sensor_network_retransmission.py")
        assert completed.returncode == 0, completed.stderr
        assert "k_avg = 1/p" in completed.stdout
        assert "election over a 16-node sensor ring" in completed.stdout

    def test_synchronizer_comparison(self):
        completed = run_example("synchronizer_comparison.py")
        assert completed.returncode == 0, completed.stderr
        assert "Theorem 1 lower bound" in completed.stdout
        assert "matches ground truth: yes" in completed.stdout
        # The ABD synchronizer over ABE delays must be flagged as broken.
        assert "matches ground truth: NO" in completed.stdout

    def test_delay_model_zoo(self):
        completed = run_example("delay_model_zoo.py")
        assert completed.returncode == 0, completed.stderr
        assert "asynchronous" in completed.stdout
        assert "ABE admits: no" in completed.stdout

    def test_all_examples_are_covered(self):
        scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        covered = {
            "quickstart.py",
            "sensor_network_retransmission.py",
            "synchronizer_comparison.py",
            "delay_model_zoo.py",
        }
        assert scripts == covered
