"""Differential and golden lock-down of the election-core refactor.

Three layers of evidence that the fast election core (plain-counter
bookkeeping, cached activation probability, allocation-free / batched tick
scheduling, identity clock fast path) changed no observable behaviour:

1. **Goldens** -- every scenario of the differential harness
   (``tests/harness/differential.py``) is asserted bit-identical to the
   fingerprint recorded on the pre-refactor code (commit 19a8dd0): all four
   baseline leader elections, all three synchronizers, the ABE election in
   scalar / batched / FIFO / traced / constant-schedule / no-purge / fault
   configurations, and reduced E2/E3 experiment runs.
2. **Live vs legacy differential** -- full election runs on the live core and
   on the faithful pre-refactor replica
   (``benchmarks/legacy_election_core.py``) produce identical fingerprints,
   metric counters included.
3. **Unit regressions** for the new machinery: ``Simulator.reschedule``,
   ``SharedTickProcess``/``batch_ticks``, and summed external counters.
"""

from __future__ import annotations

import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from harness.differential import (
    SCENARIOS,
    assert_equivalent,
    assert_matches_golden,
    fingerprint_network,
)

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

from legacy_election_core import (  # noqa: E402
    legacy_build_election_network,
    legacy_run_election,
)

from repro.core.runner import (  # noqa: E402
    build_election_network,
    run_election,
    run_election_on_network,
)
from repro.sim.engine import SimulationError, Simulator  # noqa: E402
from repro.sim.monitor import MetricsCollector  # noqa: E402
from repro.sim.process import SharedTickProcess  # noqa: E402


class TestGoldens:
    """Every harness scenario must match its pre-refactor golden, bit for bit."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_matches_pre_refactor_golden(self, name):
        assert_matches_golden(name)


class TestLiveVsLegacyDifferential:
    """The live core vs the faithful pre-refactor replica, full fingerprints.

    The legacy replica predates the fast defaults, so the live side pins
    ``batch_sampling``/``batch_ticks`` to the replica's modes -- this suite
    proves the *historical* streams are preserved; the re-recorded goldens
    cover the new default streams.
    """

    CONFIGS = [
        ("scalar", dict(n=16, seed=7)),
        ("fifo", dict(n=12, seed=5, fifo=True)),
        ("batch_sampling", dict(n=10, seed=3, batch_sampling=True)),
        ("no_purge", dict(n=8, seed=2, purge_at_active=False)),
        ("low_a0", dict(n=10, seed=4, a0=0.1)),
        ("traced", dict(n=6, seed=8, enable_trace=True)),
    ]

    @pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
    def test_live_and_legacy_fingerprints_identical(self, label, config):
        config = dict(config)
        n = config.pop("n")
        seed = config.pop("seed")
        include_trace = config.get("enable_trace", False)
        config.setdefault("batch_sampling", False)

        live_network, live_status = build_election_network(
            n, seed=seed, batch_ticks=False, **config
        )
        live_result = run_election_on_network(
            live_network, live_status, a0=config.get("a0", 0.3)
        )
        live = fingerprint_network(live_network, include_trace=include_trace)
        live["result"] = asdict(live_result)

        config.pop("validate_model", None)
        legacy_network, legacy_status = legacy_build_election_network(
            n, seed=seed, **config
        )
        legacy_network.stop_when(lambda: legacy_status.decided)
        legacy_network.run(max_events=500_000 + 50_000 * n)
        legacy = fingerprint_network(legacy_network, include_trace=include_trace)
        legacy["result"] = asdict(
            _legacy_result(legacy_network, legacy_status, seed, config.get("a0", 0.3))
        )

        assert_equivalent(legacy, live, context=f"live vs legacy ({label})")

    def test_run_election_equals_legacy_run_election_across_seeds(self):
        for seed in range(10):
            live = run_election(
                12, a0=0.3, seed=seed, batch_sampling=False, batch_ticks=False
            )
            assert live == legacy_run_election(12, a0=0.3, seed=seed)


def _legacy_result(network, status, seed, a0):
    from repro.core.runner import ElectionResult

    return ElectionResult(
        n=network.n,
        elected=status.decided,
        leader_uid=status.leader_uid,
        election_time=status.election_time,
        messages_total=network.messages_sent(),
        knockout_messages=status.knockouts,
        activations=status.activations,
        ticks=status.ticks,
        hop_overflows=status.hop_overflows,
        events_processed=network.simulator.events_processed,
        seed=seed,
        a0=a0,
        leaders_elected=status.leaders_elected,
    )


class TestReschedule:
    """The engine's zero-allocation re-arm primitive."""

    def test_reschedule_reuses_the_event_record(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(sim.now))
        event = handle._event
        sim.run()
        sim.reschedule(handle, 2.0)
        assert handle._event is event  # same record, re-armed
        assert not handle.fired and not handle.cancelled
        sim.run()
        assert fired == [1.0, 3.0]

    def test_reschedule_orders_like_a_fresh_schedule(self):
        sim = Simulator()
        fired = []
        recurring = sim.schedule(1.0, lambda: fired.append("recurring"))
        sim.run()
        # Re-arm, then schedule a fresh event for the same instant: the
        # re-armed entry consumed the earlier sequence number and fires first.
        sim.reschedule(recurring, 1.0)
        sim.schedule(1.0, lambda: fired.append("fresh"))
        sim.run()
        assert fired == ["recurring", "recurring", "fresh"]

    def test_reschedule_requires_a_fired_event(self):
        sim = Simulator()
        pending = sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(pending, 1.0)
        cancelled = sim.schedule(1.0, lambda: None)
        cancelled.cancel()
        with pytest.raises(SimulationError):
            sim.reschedule(cancelled, 1.0)

    def test_reschedule_validates_delay_and_counts(self):
        sim = Simulator()
        handle = sim.schedule(0.0, lambda: None)
        sim.run()
        scheduled_before = sim.events_scheduled
        with pytest.raises(SimulationError):
            sim.reschedule(handle, -1.0)
        with pytest.raises(SimulationError):
            sim.reschedule(handle, float("nan"))
        sim.reschedule(handle, 1.0)
        assert sim.events_scheduled == scheduled_before + 1

    def test_rescheduled_event_can_be_cancelled(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.0, lambda: fired.append(1))
        sim.run()
        sim.reschedule(handle, 1.0)
        assert handle.cancel() is True
        sim.run()
        assert fired == [1]


class TestSharedTickProcess:
    def test_members_tick_in_join_order_every_round(self):
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        order = []
        driver.join(lambda count: order.append(("a", count)))
        driver.join(lambda count: order.append(("b", count)))
        sim.run(until=2.5)
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        assert driver.rounds == 2

    def test_false_return_and_stop_deregister(self):
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        counts = {"a": 0, "b": 0}

        def once(count):
            counts["a"] += 1
            return False

        driver.join(once)
        member_b = driver.join(lambda count: counts.__setitem__("b", counts["b"] + 1))
        sim.run(until=3.5)
        assert counts["a"] == 1
        assert counts["b"] == 3
        member_b.stop()
        assert driver.live_members == 0
        # The pending round event is cancelled: nothing else fires.
        processed = sim.events_processed
        sim.run()
        assert sim.events_processed == processed

    def test_one_event_per_round_regardless_of_member_count(self):
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        for _ in range(50):
            driver.join(lambda count: None)
        sim.run(until=4.5)
        assert driver.rounds == 4
        assert sim.events_processed == 4  # one heap entry per round

    def test_member_joining_between_rounds_keeps_its_own_grid(self):
        """Per-member grid semantics (matches TickProcess): a member joining
        at t=1.5 first ticks a full period later, at t=2.5 -- not at the
        other members' 2.0 round.  Its instants occupy separate buckets."""
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        driver.join(lambda count: None)  # ticks at t=1, 2, 3, ...
        ticks = []
        sim.schedule(1.5, lambda: driver.join(lambda count: ticks.append(sim.now)))
        sim.run(until=3.5)
        assert ticks == [2.5, 3.5]  # its own offset grid, like a TickProcess

    def test_member_joining_mid_round_first_ticks_next_round(self):
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        order = []

        def joiner(count):
            order.append(("first", count))
            if count == 0:
                driver.join(lambda c: order.append(("late", c)))

        driver.join(joiner)
        sim.run(until=2.5)
        # The late member joined *during* the t=1 tick, so its bucket slot at
        # t=2 was claimed before "first" re-armed -- exactly the order a
        # fresh TickProcess created inside the callback would produce.
        assert order == [("first", 0), ("late", 0), ("first", 1)]

    def test_rejoin_after_everyone_left_rearms(self):
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        first = driver.join(lambda count: None)
        sim.run(until=1.5)
        first.stop()
        sim.run()
        ticks = []
        driver.join(ticks.append)
        sim.run(until=sim.now + 2.5)
        assert len(ticks) == 2

    def test_stopped_members_leave_their_bucket(self):
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        ticks = []
        members = [driver.join(lambda count, i=i: ticks.append(i)) for i in range(10)]
        for member in members[:9]:
            member.stop()
        sim.run(until=1.5)
        assert driver.live_members == 1
        assert ticks == [9]  # only the survivor ticked
        assert driver.pending_instants == 1  # its next bucket, nothing stale

    def test_drifting_members_occupy_distinct_instants(self):
        from repro.sim.clock import ConstantRateDrift, LocalClock

        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        times = {"fast": [], "slow": []}
        fast_clock = LocalClock(0.5, 2.0, drift_model=ConstantRateDrift(2.0))
        slow_clock = LocalClock(0.5, 2.0, drift_model=ConstantRateDrift(0.5))
        driver.join(lambda count: times["fast"].append(sim.now), clock=fast_clock)
        driver.join(lambda count: times["slow"].append(sim.now), clock=slow_clock)
        sim.run(until=4.0)
        # Rate 2 ticks every 0.5 real units; rate 0.5 every 2 real units --
        # exactly what a private TickProcess on each clock would do.
        assert times["fast"] == [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
        assert times["slow"] == [2.0, 4.0]
        # The shared instants (2.0, 4.0) rode one bucket each.
        assert driver.rounds == len(set(times["fast"]) | set(times["slow"]))

    def test_membership_duck_types_tick_process(self):
        sim = Simulator()
        driver = SharedTickProcess(sim, period=1.0)
        member = driver.join(lambda count: None)
        assert member.ticks == 0 and member.stopped is False
        sim.run(until=1.5)
        assert member.ticks == 1
        member.stop()
        assert member.stopped is True


class TestBatchTicksMode:
    """The opt-in shared-round driver: identical elections, fewer events."""

    def test_outcomes_identical_to_per_node_ticks(self):
        for n in (8, 16):
            for seed in range(8):
                per_node = asdict(run_election(n, a0=0.3, seed=seed, batch_ticks=False))
                batched = asdict(run_election(n, a0=0.3, seed=seed, batch_ticks=True))
                per_node_events = per_node.pop("events_processed")
                batched_events = batched.pop("events_processed")
                assert per_node == batched, f"n={n} seed={seed}"
                # The whole point: one event per activation round, not per node.
                assert batched_events < per_node_events

    def test_batch_ticks_composes_with_batch_sampling_and_fifo(self):
        kwargs = dict(a0=0.3, seed=5, batch_sampling=True, fifo=True)
        plain = asdict(run_election(12, batch_ticks=False, **kwargs))
        batched = asdict(run_election(12, batch_ticks=True, **kwargs))
        plain.pop("events_processed")
        batched.pop("events_processed")
        assert plain == batched

    def test_batch_ticks_is_deterministic(self):
        first = run_election(10, a0=0.3, seed=9, batch_ticks=True)
        second = run_election(10, a0=0.3, seed=9, batch_ticks=True)
        assert first == second

    def test_batch_ticks_tolerates_drifting_clocks(self):
        """The e8 workload: random-walk drift within loose bounds.  The
        drift-tolerant driver buckets ticks per instant, so outcomes match
        per-node ticking bit for bit (only event granularity differs)."""
        from repro.sim.clock import RandomWalkDrift

        for seed in range(4):
            kwargs = dict(
                a0=0.3,
                seed=seed,
                clock_bounds=(0.5, 2.0),
                clock_drift_factory=lambda uid: RandomWalkDrift(
                    initial_rate=1.25, step=0.15
                ),
            )
            per_node = asdict(run_election(8, batch_ticks=False, **kwargs))
            batched = asdict(run_election(8, batch_ticks=True, **kwargs))
            per_node.pop("events_processed")
            batched.pop("events_processed")
            assert per_node == batched, f"seed={seed}"


class TestSummedExternalCounters:
    def test_same_source_binds_once(self):
        metrics = MetricsCollector()
        box = {"value": 0}
        source = object()
        for _ in range(5):  # every node program of a run binds the shared status
            metrics.bind_external_sum("hits", source, lambda: box["value"])
        box["value"] = 3
        assert metrics.count("hits") == 3.0

    def test_distinct_sources_sum(self):
        metrics = MetricsCollector()
        a, b = {"value": 2}, {"value": 5}
        metrics.bind_external_sum("hits", a, lambda: a["value"])
        metrics.bind_external_sum("hits", b, lambda: b["value"])
        assert metrics.count("hits") == 7.0
        assert metrics.counters()["hits"] == 7.0

    def test_zero_valued_sum_is_hidden_like_an_untouched_counter(self):
        metrics = MetricsCollector()
        box = {"value": 0}
        metrics.bind_external_sum("hits", box, lambda: box["value"])
        assert "hits" not in metrics.counters()
        assert "hits" not in metrics.summary()
        assert metrics.count("hits") == 0.0
        box["value"] = 1
        assert metrics.counters()["hits"] == 1.0

    def test_summed_names_are_read_only_through_the_collector(self):
        metrics = MetricsCollector()
        metrics.bind_external_sum("hits", self, lambda: 1)
        with pytest.raises(ValueError):
            metrics.increment("hits")

    def test_binding_styles_cannot_mix(self):
        metrics = MetricsCollector()
        metrics.bind_external("plain", lambda: 1)
        with pytest.raises(ValueError):
            metrics.bind_external_sum("plain", self, lambda: 1)
        other = MetricsCollector()
        other.bind_external_sum("summed", self, lambda: 1)
        with pytest.raises(ValueError):
            other.bind_external("summed", lambda: 1)

    def test_collector_owned_names_cannot_be_rebound(self):
        metrics = MetricsCollector()
        metrics.increment("hits")
        with pytest.raises(ValueError):
            metrics.bind_external_sum("hits", self, lambda: 1)
