"""Regression tests for the zero-overhead message path.

Covers the handle-free engine fast path (``schedule_call``/``schedule_call_at``),
event-record recycling, per-channel envelope pooling, the null tracer, the
before-event stop-predicate hook, and -- most importantly -- bit-identity of
full election runs with the values recorded on the pre-refactor code, for both
the default per-message sampling and the batched/FIFO configurations.
"""

from __future__ import annotations

import pytest

from repro.core.runner import build_election_network, run_election, run_election_on_network
from repro.network.delays import ConstantDelay, UniformDelay
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import Topology, unidirectional_ring
from repro.sim.engine import SimulationError, Simulator
from repro.sim.trace import NULL_TRACER, NullTracer, Tracer


class TestScheduleCallFastPath:
    def test_interleaves_with_schedule_in_scheduling_order(self, simulator):
        """Equal timestamps fire strictly in scheduling order across both APIs."""
        fired = []
        simulator.schedule(1.0, lambda: fired.append("ev-a"))
        simulator.schedule_call(1.0, fired.append, "fast-b")
        simulator.schedule(1.0, lambda: fired.append("ev-c"))
        simulator.schedule_call(1.0, fired.append, "fast-d")
        simulator.run()
        assert fired == ["ev-a", "fast-b", "ev-c", "fast-d"]

    def test_schedule_call_at_orders_by_time_and_priority(self, simulator):
        fired = []
        simulator.schedule_call_at(2.0, fired.append, "late")
        simulator.schedule_call_at(1.0, fired.append, "early-low", priority=1)
        simulator.schedule_call_at(1.0, fired.append, "early-high", priority=0)
        simulator.run()
        assert fired == ["early-high", "early-low", "late"]

    def test_counts_as_scheduled_and_processed(self, simulator):
        simulator.schedule_call(0.5, lambda arg: None)
        simulator.schedule_call_at(1.0, lambda arg: None)
        assert simulator.events_scheduled == 2
        assert simulator.pending == 2
        simulator.run()
        assert simulator.events_processed == 2
        assert simulator.now == 1.0

    def test_validation_matches_schedule(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule_call(-0.1, lambda arg: None)
        with pytest.raises(SimulationError):
            simulator.schedule_call(float("nan"), lambda arg: None)
        with pytest.raises(SimulationError):
            simulator.schedule_call(float("inf"), lambda arg: None)
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_call_at(1.0, lambda arg: None)

    def test_respects_horizon_and_event_cap(self, simulator):
        fired = []
        for t in (1.0, 2.0, 8.0):
            simulator.schedule_call_at(t, fired.append, t)
        assert simulator.run(until=5.0) == 5.0
        assert fired == [1.0, 2.0]
        simulator.schedule_call(10.0, fired.append, "capped-out")
        simulator.run(max_events=1)
        assert fired == [1.0, 2.0, 8.0]

    def test_step_fires_fast_entries(self, simulator):
        fired = []
        simulator.schedule_call(1.0, fired.append, "x")
        assert simulator.step() is True
        assert fired == ["x"]
        assert simulator.step() is False

    def test_listeners_do_not_see_fast_entries(self, simulator):
        seen = []
        simulator.add_listener(seen.append)
        simulator.schedule_call(1.0, lambda arg: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert len(seen) == 1  # only the regular event

    def test_before_event_hook_sees_every_entry(self, simulator):
        ticks = []
        simulator.add_before_event(lambda: ticks.append(simulator.now))
        simulator.schedule_call(1.0, lambda arg: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert ticks == [1.0, 2.0]

    def test_hook_installed_mid_run_takes_effect(self, simulator):
        """A hook installed by a callback during run() governs later events."""
        fired = []
        simulator.schedule(1.0, lambda: simulator.add_before_event(simulator.stop))
        simulator.schedule(2.0, lambda: fired.append("a"))
        simulator.schedule(3.0, lambda: fired.append("b"))
        simulator.run()
        # The hook stops the run before 3.0; 2.0's event still fires because
        # stop() takes effect after the current event, like stop_when.
        assert fired == ["a"]

    def test_stop_when_registered_mid_run_takes_effect(self):
        """A program may install its stop predicate during the run."""
        received = []

        class LateStopper(NodeProgram):
            def on_start(self):
                if self.node.uid == 0:
                    self.send(0, 0)

            def on_receive(self, payload, port):
                received.append(payload)
                if payload == 3:
                    self.node.network.stop_when(lambda: True)
                self.send(0, payload + 1)

        config = NetworkConfig(
            topology=unidirectional_ring(2),
            delay_model=ConstantDelay(1.0),
            seed=0,
            enable_trace=False,
        )
        network = Network(config, lambda uid: LateStopper())
        network.run(max_events=1000)
        # The predicate is evaluated before the event after its registration:
        # that one delivery still fires, then the run stops.
        assert received == [0, 1, 2, 3, 4]


class TestEventRecycling:
    def test_fired_events_are_recycled_when_unobserved(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)  # handle discarded
        sim.run()
        assert len(sim._free_events) == 1
        recycled = sim._free_events[0]
        sim.schedule(1.0, lambda: None)
        assert not sim._free_events
        assert sim._queue[0][3] is recycled

    def test_retained_handles_block_recycling_and_stay_truthful(self):
        sim = Simulator()
        handle = sim.schedule(0.0, lambda: None)
        sim.run()
        assert not sim._free_events  # the live handle blocked the recycle
        assert handle.fired
        assert handle.cancel() is False

    def test_recycled_events_leak_no_state(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append("first"), payload={"secret": 1})
        sim.run()
        handle = sim.schedule(1.0, lambda: fired.append("second"), payload=None)
        assert handle.payload is None
        assert not handle.fired and not handle.cancelled
        sim.run()
        assert fired == ["first", "second"]


class RelayOnce(NodeProgram):
    """Send one message per received message, up to a budget."""

    def __init__(self, budget):
        super().__init__()
        self.budget = budget

    def on_start(self):
        if self.node.uid == 0:
            self.send(0, {"hops": 0})

    def on_receive(self, payload, port):
        if self.budget["remaining"] > 0:
            self.budget["remaining"] -= 1
            self.send(0, {"hops": payload["hops"] + 1})


class TestEnvelopePooling:
    def _relay_network(self, enable_trace: bool, messages: int = 40) -> Network:
        budget = {"remaining": messages - 1}
        config = NetworkConfig(
            topology=unidirectional_ring(3),
            delay_model=ConstantDelay(1.0),
            seed=0,
            enable_trace=enable_trace,
        )
        return Network(config, lambda uid: RelayOnce(budget))

    def test_envelopes_recycled_with_tracing_disabled(self):
        network = self._relay_network(enable_trace=False)
        network.run()
        assert any(channel._envelope_pool for channel in network.channels)

    def test_no_state_leaks_across_pooled_messages(self):
        """Every delivered payload is exactly the one sent for that hop."""
        received = []

        class Checker(NodeProgram):
            def on_start(self):
                if self.node.uid == 0:
                    self.send(0, {"hops": 0})

            def on_receive(self, payload, port):
                received.append(payload["hops"])
                if payload["hops"] < 30:
                    self.send(0, {"hops": payload["hops"] + 1})

        config = NetworkConfig(
            topology=unidirectional_ring(3),
            delay_model=ConstantDelay(1.0),
            seed=0,
            enable_trace=False,
        )
        network = Network(config, lambda uid: Checker())
        network.run()
        assert received == list(range(31))

    def test_retained_envelope_is_never_recycled(self):
        # Budget 0: receivers never forward, so the injected payload is inert.
        network = self._relay_network(enable_trace=False, messages=1)
        channel = network.channels[0]
        kept = channel.transmit({"hops": "kept"})
        network.run()
        # The retained envelope kept its identity and fields...
        assert kept.payload == {"hops": "kept"}
        # ... and was not parked in the pool.
        assert kept not in channel._envelope_pool

    def test_pooled_envelopes_get_fresh_ids(self):
        network = self._relay_network(enable_trace=False)
        network.run()
        channel = network.channels[0]
        pooled = channel._envelope_pool[0]
        old_id = pooled.envelope_id
        envelope = channel.transmit("again")
        assert envelope is pooled
        assert envelope.envelope_id != old_id


class TestNullTracer:
    def test_disabled_network_uses_shared_null_tracer(self):
        config = NetworkConfig(
            topology=unidirectional_ring(2),
            delay_model=ConstantDelay(1.0),
            seed=0,
            enable_trace=False,
        )
        network = Network(config, lambda uid: RelayOnce({"remaining": 0}))
        assert network.tracer is NULL_TRACER
        assert isinstance(network.tracer, Tracer)
        network.run()
        assert len(network.tracer) == 0
        # Incidental trace calls stay valid no-ops.
        network.nodes[0].program.trace("anything", detail=1)
        assert len(NULL_TRACER) == 0

    def test_null_tracer_cannot_be_enabled(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with pytest.raises(ValueError):
            tracer.enabled = True

    def test_channels_skip_tracer_only_when_disabled(self):
        for enable_trace, expected in ((True, True), (False, False)):
            config = NetworkConfig(
                topology=unidirectional_ring(2),
                delay_model=ConstantDelay(1.0),
                seed=0,
                enable_trace=enable_trace,
            )
            network = Network(config, lambda uid: RelayOnce({"remaining": 0}))
            assert all(
                (channel._tracer is not None) == expected
                for channel in network.channels
            )

    def test_metrics_read_back_externally_counted_messages(self):
        budget = {"remaining": 9}
        config = NetworkConfig(
            topology=unidirectional_ring(2),
            delay_model=ConstantDelay(1.0),
            seed=0,
            enable_trace=False,
        )
        network = Network(config, lambda uid: RelayOnce(budget))
        network.run()
        assert network.messages_sent() == 10
        assert network.metrics.count("messages_sent") == 10
        assert network.metrics.count("messages_delivered") == 10
        assert network.metrics.count("deliveries") == 10
        assert network.metrics.counters()["messages_sent"] == 10
        assert network.metrics.summary()["messages_sent"] == 10
        with pytest.raises(ValueError):
            network.metrics.increment("messages_sent")


class TestFifoBatchSamplingInteraction:
    """Satellite regression: FIFO ordering and determinism hold under
    ``batch_sampling`` (the block sampler must not bypass the FIFO clamp)."""

    def _burst_network(self, seed: int, batch_sampling: bool):
        topology = Topology(n=2, edges=[(0, 1)], name="pair")
        received = []

        class Burst(NodeProgram):
            def on_start(self):
                if self.node.uid == 0:
                    for index in range(6):
                        self.send(0, f"msg-{index}")

            def on_receive(self, payload, port):
                received.append(payload)

        config = NetworkConfig(
            topology=topology,
            delay_model=UniformDelay(0.0, 10.0),
            seed=seed,
            fifo=True,
            batch_sampling=batch_sampling,
            enable_trace=False,
        )
        return Network(config, lambda uid: Burst()), received

    def test_fifo_order_preserved_for_every_seed_with_batch_sampling(self):
        for seed in range(20):
            network, received = self._burst_network(seed, batch_sampling=True)
            network.run()
            assert received == [f"msg-{i}" for i in range(6)], f"seed {seed}"

    def test_batched_fifo_is_deterministic_per_seed(self):
        first_network, first = self._burst_network(3, batch_sampling=True)
        first_network.run()
        first_times = [c.total_delay for c in first_network.channels]
        second_network, second = self._burst_network(3, batch_sampling=True)
        second_network.run()
        assert first == second
        assert first_times == [c.total_delay for c in second_network.channels]

    def test_batched_fifo_election_deterministic(self):
        a = run_election(8, a0=0.3, seed=11, batch_sampling=True, fifo=True)
        b = run_election(8, a0=0.3, seed=11, batch_sampling=True, fifo=True)
        assert a == b
        assert a.elected


class TestElectionBitIdentity:
    """Golden values recorded on the pre-refactor code (PR 1, commit aa4bb66):
    the zero-overhead message path must not change a single simulation.

    Recorded before batch sampling / batch ticks became the defaults, so the
    historical modes are pinned explicitly: these tests prove the *scalar*
    and *batch-sampling* streams themselves are untouched by later work (the
    fast-default flip only changed which stream runs when you don't ask).
    """

    def test_scalar_election_golden(self):
        result = run_election(8, a0=0.3, seed=7, batch_sampling=False, batch_ticks=False)
        assert result.messages_total == 48
        assert result.election_time == 36.986563522772045
        assert result.leader_uid == 6
        assert result.events_processed == 142

    def test_batched_election_golden(self):
        result = run_election(8, a0=0.3, seed=11, batch_sampling=True, batch_ticks=False)
        assert result.messages_total == 88
        assert result.election_time == 55.28853078812167
        assert result.leader_uid == 2
        assert result.events_processed == 221

    def test_election_trials_golden(self):
        from repro.experiments.workloads import election_trials

        trials = election_trials(
            8, trials=5, base_seed=13, batch_sampling=False, batch_ticks=False
        )
        observed = [
            [t.messages_total, t.election_time, t.leader_uid, t.events_processed]
            for t in trials
        ]
        assert observed == [
            [8, 33.57261442637278, 0, 249],
            [8, 19.582557039577022, 0, 154],
            [8, 9.68304487582973, 7, 54],
            [8, 14.335346032118206, 1, 99],
            [16, 26.61571961600581, 3, 106],
        ]

    def test_e1_run_golden(self):
        """A full (reduced-size) E1 run is bit-identical to the pre-refactor
        engine: same means, same confidence intervals, same findings."""
        from repro.experiments import e1_message_complexity

        result = e1_message_complexity.run(sizes=(8, 16), trials=4, base_seed=11)
        rows = [dict(row) for row in result.table()]
        assert [row["messages_mean"] for row in rows] == [14.0, 20.0]
        assert rows[0]["messages_ci95"] == 6.364892610567416
        assert rows[1]["messages_ci95"] == 12.729785221134833
        assert result.findings["best_growth_order"] == "n"
        assert result.findings["max_messages_per_node"] == 1.75
        assert result.findings["all_runs_elected"] is True

    def test_stop_predicate_timing_unchanged(self):
        """The before-event hook must stop the run at exactly the same event
        the old listener-based predicate did (messages_total depends on it)."""
        network, status = build_election_network(
            8, a0=0.3, seed=7, batch_sampling=False, batch_ticks=False
        )
        result = run_election_on_network(network, status, a0=0.3)
        assert result.messages_total == network.messages_sent() == 48
