"""Unit tests for periodic and clock-tick processes."""

from __future__ import annotations

import random

import pytest

from repro.sim.clock import ConstantRateDrift, LocalClock, RandomWalkDrift
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, TickProcess


class TestPeriodicProcess:
    def test_fires_every_period(self):
        sim = Simulator()
        calls = []
        PeriodicProcess(sim, period=2.0, callback=lambda i: calls.append((i, sim.now)))
        sim.run(until=9.0)
        assert calls == [(0, 0.0), (1, 2.0), (2, 4.0), (3, 6.0), (4, 8.0)]

    def test_start_delay(self):
        sim = Simulator()
        calls = []
        PeriodicProcess(sim, period=1.0, callback=lambda i: calls.append(sim.now), start_delay=3.0)
        sim.run(until=5.5)
        assert calls == [3.0, 4.0, 5.0]

    def test_callback_returning_false_stops(self):
        sim = Simulator()
        calls = []

        def callback(count: int):
            calls.append(count)
            return count < 2

        process = PeriodicProcess(sim, period=1.0, callback=callback)
        sim.run(until=20.0)
        assert calls == [0, 1, 2]
        assert process.stopped

    def test_explicit_stop(self):
        sim = Simulator()
        calls = []
        process = PeriodicProcess(sim, period=1.0, callback=lambda i: calls.append(i))
        sim.run(until=2.5)
        process.stop()
        sim.run(until=10.0)
        assert calls == [0, 1, 2]

    def test_invocations_counter(self):
        sim = Simulator()
        process = PeriodicProcess(sim, period=1.0, callback=lambda i: None)
        sim.run(until=4.5)
        assert process.invocations == 5

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, period=0.0, callback=lambda i: None)
        with pytest.raises(ValueError):
            PeriodicProcess(sim, period=1.0, callback=lambda i: None, start_delay=-1.0)


class TestTickProcess:
    def test_unit_rate_clock_ticks_every_unit(self):
        sim = Simulator()
        clock = LocalClock()
        times = []
        TickProcess(sim, clock, lambda i: times.append(sim.now))
        sim.run(until=5.5)
        assert times == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])

    def test_fast_clock_ticks_more_often(self):
        sim = Simulator()
        clock = LocalClock(s_low=2.0, s_high=2.0, drift_model=ConstantRateDrift(2.0))
        times = []
        TickProcess(sim, clock, lambda i: times.append(sim.now))
        sim.run(until=3.25)
        # Rate 2 => a local tick every 0.5 real time units.
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5, 3.0])

    def test_tick_count_respects_clock_rate_bounds(self):
        sim = Simulator()
        clock = LocalClock(
            s_low=0.5,
            s_high=2.0,
            drift_model=RandomWalkDrift(initial_rate=1.0, step=0.3),
            rng=random.Random(7),
        )
        process = TickProcess(sim, clock, lambda i: None)
        horizon = 100.0
        sim.run(until=horizon)
        # Between s_low * t and s_high * t local ticks can fit into real time t.
        assert 0.5 * horizon - 2 <= process.ticks <= 2.0 * horizon + 2

    def test_callback_false_stops_ticking(self):
        sim = Simulator()
        clock = LocalClock()
        seen = []

        def callback(count: int):
            seen.append(count)
            return False

        process = TickProcess(sim, clock, callback)
        sim.run(until=10.0)
        assert seen == [0]
        assert process.stopped

    def test_stop_cancels_pending_tick(self):
        sim = Simulator()
        clock = LocalClock()
        seen = []
        process = TickProcess(sim, clock, lambda i: seen.append(i))
        sim.run(until=2.5)
        process.stop()
        sim.run(until=10.0)
        assert seen == [0, 1]

    def test_custom_local_period(self):
        sim = Simulator()
        clock = LocalClock()
        times = []
        TickProcess(sim, clock, lambda i: times.append(sim.now), local_period=2.5)
        sim.run(until=8.0)
        assert times == pytest.approx([2.5, 5.0, 7.5])

    def test_invalid_period_rejected(self):
        sim = Simulator()
        clock = LocalClock()
        with pytest.raises(ValueError):
            TickProcess(sim, clock, lambda i: None, local_period=0.0)
