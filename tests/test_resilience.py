"""Resilient execution: supervision, chaos recovery, watchdog, checkpointing.

Three layers under test:

* :func:`repro.experiments.resilience.supervised_map` -- the supervised
  fan-out primitive must survive SIGKILLed workers, hung trials and an
  unusable pool, and the recovered results must be bit-identical to serial
  execution (trials are pure functions of their seeds).
* The divergence watchdog -- ``Simulator.run(raise_on_limit=True)`` raises a
  catchable :class:`~repro.sim.engine.SimulationDiverged` for truncated runs,
  reachable from ``run_election`` and declaratively via ``on_budget``.
* :class:`~repro.experiments.resilience.CheckpointJournal` -- crash-safe
  resume must skip completed ``(key, seed)`` trials and reproduce aggregates
  bit for bit, including through the ``abe-repro scenario`` CLI.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time
from dataclasses import dataclass

import pytest

from repro.core.runner import run_election
from repro.experiments.parallel import SweepPool, fork_available
from repro.experiments.resilience import (
    CheckpointJournal,
    ExecutionPolicy,
    ForkPoolManager,
    TrialFailure,
    active_policy,
    callable_fingerprint,
    checkpointed_trials,
    current_policy,
    decode_result,
    encode_result,
    spec_fingerprint,
    supervised_map,
)
from repro.experiments.runner import adaptive_monte_carlo, monte_carlo, trial_seeds
from repro.experiments.workloads import ElectionTrial
from repro.network.delays import ExponentialDelay
from repro.scenarios import ScenarioSpec, run_scenario
from repro.sim import SimulationDiverged

VICTIM = 7  # the seed whose first execution misbehaves in the chaos trials


def square(x):  # module-level: picklable for pool workers
    return x * x


def fail_on_victim(x):
    if x == VICTIM:
        raise ValueError("poison seed")
    return 2 * x


@dataclass
class KillOnce:
    """SIGKILL the worker the first time it sees the victim seed."""

    marker: str

    def __call__(self, seed):
        if seed == VICTIM and not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return seed * seed


@dataclass
class HangOnce:
    """Hang (well past any test timeout) the first time the victim seed runs."""

    marker: str

    def __call__(self, seed):
        if seed == VICTIM and not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            time.sleep(60.0)
        return seed + 1


def _broken_factory():
    raise RuntimeError("fork is not available right now")


class TestTrialFailure:
    def test_metric_attributes_read_as_none(self):
        failure = TrialFailure(
            seed=3, item="3", attempts=2, kind="error", error_type="ValueError", message="x"
        )
        assert failure.elected is None
        assert failure.messages_total is None
        assert failure.seed == 3 and failure.attempts == 2

    def test_private_lookups_fail_normally_so_pickle_works(self):
        failure = TrialFailure(
            seed=None, item="spec", attempts=1, kind="timeout", error_type="TimeoutError", message=""
        )
        with pytest.raises(AttributeError):
            failure._nonexistent
        clone = pickle.loads(pickle.dumps(failure))
        assert clone == failure


class TestExecutionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(trial_timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(backoff_base=1.0, backoff_cap=0.5)

    def test_supervised_property(self):
        assert not ExecutionPolicy().supervised
        assert ExecutionPolicy(trial_timeout=1.0).supervised
        assert ExecutionPolicy(retries=1).supervised

    def test_active_policy_installs_and_restores(self):
        policy = ExecutionPolicy(retries=1)
        assert current_policy() is None
        with active_policy(policy):
            assert current_policy() is policy
        assert current_policy() is None


class TestChaosRecovery:
    """Worker loss, hangs and errors must not cost results or determinism."""

    def test_sigkilled_worker_recovers_bit_identical(self, tmp_path):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        items = list(range(12))
        fn = KillOnce(str(tmp_path / "killed"))
        policy = ExecutionPolicy(trial_timeout=2.0, retries=2, backoff_base=0.01)
        with active_policy(policy):
            with SweepPool(workers=3) as pool:
                results = pool.map(fn, items)
        assert os.path.exists(str(tmp_path / "killed"))  # the kill really happened
        assert results == [x * x for x in items]  # bit-identical to serial
        assert policy.failures == []  # recovered, not recorded as failed

    def test_hung_trial_times_out_and_retry_succeeds(self, tmp_path):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        items = list(range(10))
        fn = HangOnce(str(tmp_path / "hung"))
        policy = ExecutionPolicy(trial_timeout=1.0, retries=2, backoff_base=0.01)
        with active_policy(policy):
            with SweepPool(workers=2) as pool:
                results = pool.map(fn, items)
        assert results == [x + 1 for x in items]
        assert policy.failures == []

    def test_exhausted_retries_become_structured_failures(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        items = list(range(10))
        policy = ExecutionPolicy(retries=1, backoff_base=0.01)
        with active_policy(policy):
            with SweepPool(workers=2) as pool:
                results = pool.map(fail_on_victim, items)
        for x, result in zip(items, results):
            if x == VICTIM:
                assert isinstance(result, TrialFailure)
                assert result.kind == "error"
                assert result.error_type == "ValueError"
                assert result.attempts == 2  # first run + one retry
            else:
                assert result == 2 * x
        assert len(policy.failures) == 1
        assert policy.failures[0].seed == VICTIM

    def test_unusable_pool_degrades_to_serial(self):
        pools = ForkPoolManager(_broken_factory)
        policy = ExecutionPolicy(
            trial_timeout=1.0, backoff_base=0.001, backoff_cap=0.001, max_pool_rebuilds=1
        )
        results = supervised_map(
            square, list(range(6)), pools=pools, workers=2, policy=policy
        )
        assert results == [x * x for x in range(6)]
        assert policy.failures == []

    def test_serial_degradation_still_retries_and_records_failures(self):
        pools = ForkPoolManager(_broken_factory)
        policy = ExecutionPolicy(
            trial_timeout=1.0, retries=1, backoff_base=0.001, backoff_cap=0.001,
            max_pool_rebuilds=0,
        )
        results = supervised_map(
            fail_on_victim, list(range(10)), pools=pools, workers=2, policy=policy
        )
        assert [r for x, r in zip(range(10), results) if x != VICTIM] == [
            2 * x for x in range(10) if x != VICTIM
        ]
        assert isinstance(results[VICTIM], TrialFailure)
        assert results[VICTIM].attempts == 2

    def test_serial_execution_honours_the_retry_contract(self):
        # --retries must mean the same thing at workers=1 as on a pool: the
        # failing trial becomes a TrialFailure, everything else completes.
        policy = ExecutionPolicy(retries=1)
        with active_policy(policy):
            results = monte_carlo(fail_on_victim, trials=10, base_seed=0, workers=1)
        failures = [r for r in results if isinstance(r, TrialFailure)]
        # fail_on_victim keys off the raw derived seeds; at least the
        # non-failing trials must have completed with real values.
        assert len(results) == 10
        assert all(isinstance(r, (int, TrialFailure)) for r in results)
        assert policy.failures == failures

    def test_serial_run_trial_captures_divergence(self):
        spec = ScenarioSpec(
            algorithm="abe-election",
            topology={"kind": "uniring", "params": {"n": 8}},
            seed=3,
            trials=2,
            max_events=20,
            on_budget="raise",
        )
        policy = ExecutionPolicy(retries=1)
        with active_policy(policy):
            results = run_scenario(spec, workers=1)
        assert len(results) == 2
        assert all(isinstance(r, TrialFailure) for r in results)
        assert all(f.error_type == "SimulationDiverged" for f in policy.failures)
        assert all(f.attempts == 2 for f in policy.failures)  # retried deterministically

    def test_unsupervised_map_is_unchanged(self):
        # No policy (or a non-supervising one) keeps the historical behaviour:
        # worker exceptions propagate, results are bit-identical.
        if not fork_available():
            pytest.skip("fork start method unavailable")
        with SweepPool(workers=2) as pool:
            assert pool.map(square, range(8)) == [x * x for x in range(8)]
            with pytest.raises(ValueError):
                pool.map(fail_on_victim, range(10))


class TestKeyboardInterrupt:
    def test_interrupt_terminates_and_joins_workers(self, monkeypatch):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        import repro.experiments.resilience as resilience

        pool = SweepPool(workers=2)
        try:
            assert pool.map(square, range(4)) == [0, 1, 4, 9]
            assert pool._pool is not None

            def interrupted(handle, timeout):
                raise KeyboardInterrupt

            monkeypatch.setattr(resilience, "_get_result", interrupted)
            with pytest.raises(KeyboardInterrupt):
                pool.map(square, range(4))
            # The workers were terminated and joined, not leaked.
            assert pool._pool is None
        finally:
            pool.close()


class TestDivergenceWatchdog:
    def test_event_budget_exhaustion_raises_when_asked(self):
        with pytest.raises(SimulationDiverged) as info:
            run_election(8, seed=3, max_events=20, on_budget="raise")
        assert info.value.events_processed == 20
        assert info.value.max_events == 20

    def test_default_on_budget_truncates_silently(self):
        result = run_election(8, seed=3, max_events=20)
        assert not result.elected  # truncated, but no exception

    def test_completed_run_never_raises(self):
        result = run_election(8, seed=3, on_budget="raise")
        assert result.elected

    def test_unknown_on_budget_rejected(self):
        with pytest.raises(ValueError):
            run_election(8, seed=3, on_budget="explode")

    def test_exception_survives_pickling(self):
        error = SimulationDiverged("boom", 10, 2.5, 100, None)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SimulationDiverged)
        assert clone.events_processed == 10
        assert clone.max_events == 100

    def test_scenario_spec_on_budget_raise(self):
        spec = ScenarioSpec(
            algorithm="abe-election",
            topology={"kind": "uniring", "params": {"n": 8}},
            seed=3,
            trials=1,
            max_events=20,
            on_budget="raise",
        )
        with pytest.raises(SimulationDiverged):
            run_scenario(spec, workers=1)

    def test_scenario_spec_rejects_unknown_on_budget(self):
        with pytest.raises(ValueError):
            ScenarioSpec(algorithm="abe-election", on_budget="explode")


class TestResultCodec:
    def test_primitives_and_containers_round_trip(self):
        value = {"a": [1, 2.5, None, True], "b": (3, "x"), "c": {"d": -1}}
        assert decode_result(encode_result(value)) == value

    def test_dataclass_round_trips_field_for_field(self):
        result = run_election(6, seed=1)
        clone = decode_result(encode_result(result))
        assert clone == result  # dataclass __eq__: every field, exact floats

    def test_unjournalable_values_rejected(self):
        with pytest.raises(TypeError):
            encode_result(object())
        with pytest.raises(TypeError):
            encode_result({1: "non-string key"})


class TestCheckpointJournal:
    def test_record_and_lookup_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        result = run_election(6, seed=1)
        assert journal.record("key", 123, result)
        assert not journal.record("key", 123, result)  # idempotent
        resumed = CheckpointJournal(path, resume=True)
        assert len(resumed) == 1
        assert resumed.lookup("key", [123])[123] == result
        assert resumed.lookup("other-key", [123]) == {}

    def test_fresh_journal_truncates_existing_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("key", 1, 42)
        fresh = CheckpointJournal(path, resume=False)
        assert len(fresh) == 0
        assert CheckpointJournal(path, resume=True).lookup("key", [1]) == {}

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        journal.record("key", 1, 10)
        journal.record("key", 2, 20)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "key", "seed": 3, "resu')  # torn write
        resumed = CheckpointJournal(path, resume=True)
        assert resumed.lookup("key", [1, 2, 3]) == {1: 10, 2: 20}

    def test_checkpointed_trials_executes_only_missing_seeds(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "journal.jsonl")
        seeds = [10, 11, 12, 13]
        journal.record_many("key", [(10, 100), (12, 144)])
        executed = []

        def execute(block):
            executed.extend(block)
            return [seed * seed for seed in block]

        results = checkpointed_trials(seeds, execute, journal, "key")
        assert results == [100, 121, 144, 169]
        assert executed == [11, 13]  # cached seeds were never re-run

    def test_failures_are_returned_but_never_journaled(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "journal.jsonl")
        failure = TrialFailure(
            seed=11, item="11", attempts=1, kind="error", error_type="E", message=""
        )

        def execute(block):
            return [failure if seed == 11 else seed for seed in block]

        results = checkpointed_trials([10, 11], execute, journal, "key")
        assert results == [10, failure]
        assert ("key", 10) in journal
        assert ("key", 11) not in journal  # a resume re-attempts it


class TestFingerprints:
    def test_spec_fingerprint_ignores_execution_only_fields(self):
        base = ScenarioSpec(algorithm="abe-election", seed=5, trials=4)
        more_workers = ScenarioSpec(algorithm="abe-election", seed=5, trials=4, workers=8)
        assert spec_fingerprint(base) == spec_fingerprint(more_workers)
        other = ScenarioSpec(algorithm="abe-election", seed=6, trials=4)
        assert spec_fingerprint(base) != spec_fingerprint(other)

    def test_spec_fingerprint_handles_runtime_objects_in_overrides(self):
        # e1/e3 pass live delay-model objects through election_overrides; the
        # fingerprint must stay total (and stable) for them.
        spec = ScenarioSpec(
            algorithm="abe-election",
            params={"election_overrides": {"delay": ExponentialDelay(mean=2.0)}},
        )
        assert spec_fingerprint(spec) == spec_fingerprint(spec)

    def test_callable_fingerprint_for_picklable_and_not(self):
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        key = callable_fingerprint(trial, 0, "label")
        assert key is not None
        assert key != callable_fingerprint(trial, 1, "label")
        unpicklable = lambda seed: seed  # noqa: E731 - deliberately a closure
        assert callable_fingerprint(unpicklable, 0, "label") is None


class TestMonteCarloResume:
    def test_resumed_monte_carlo_skips_all_completed_trials(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        first = monte_carlo(
            trial, trials=4, base_seed=9, checkpoint=CheckpointJournal(path),
            checkpoint_key="point",
        )

        calls = []

        def bomb(seed):
            calls.append(seed)
            raise AssertionError("resume must not re-run completed trials")

        resumed = monte_carlo(
            bomb, trials=4, base_seed=9,
            checkpoint=CheckpointJournal(path, resume=True), checkpoint_key="point",
        )
        assert calls == []
        assert resumed == first  # bit-identical aggregates

    def test_partial_resume_runs_only_missing_seeds(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        seeds = trial_seeds(9, 4)
        journal.record_many("point", [(seeds[0], trial(seeds[0])), (seeds[2], trial(seeds[2]))])

        executed = []

        def counting(seed):
            executed.append(seed)
            return trial(seed)

        results = monte_carlo(
            counting, trials=4, base_seed=9,
            checkpoint=CheckpointJournal(path, resume=True), checkpoint_key="point",
        )
        assert sorted(executed) == sorted([seeds[1], seeds[3]])
        assert results == [trial(seed) for seed in seeds]

    def test_adaptive_monte_carlo_resumes_bit_identically(self, tmp_path):
        from repro.experiments.runner import AdaptiveStopping

        path = tmp_path / "journal.jsonl"
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        rule = AdaptiveStopping(
            ci_tolerance=0.5, min_trials=2, batch_size=2, metric="messages_total"
        )
        first = adaptive_monte_carlo(
            trial, trials=6, adaptive=rule, base_seed=9,
            checkpoint=CheckpointJournal(path), checkpoint_key="point",
        )
        calls = []

        def bomb(seed):
            calls.append(seed)
            raise AssertionError("resume must not re-run completed trials")

        resumed = adaptive_monte_carlo(
            bomb, trials=6, adaptive=rule, base_seed=9,
            checkpoint=CheckpointJournal(path, resume=True), checkpoint_key="point",
        )
        assert calls == []
        assert resumed == first

    def test_pooled_resume_matches_serial_journal(self, tmp_path):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        path = tmp_path / "journal.jsonl"
        trial = ElectionTrial(6, 0.3, ExponentialDelay(mean=1.0), {})
        serial = monte_carlo(
            trial, trials=4, base_seed=9, checkpoint=CheckpointJournal(path),
            checkpoint_key="point",
        )
        with SweepPool(workers=2) as pool:
            pooled = pool.monte_carlo(
                trial, trials=4, base_seed=9,
                checkpoint=CheckpointJournal(path, resume=True), checkpoint_key="point",
            )
        assert pooled == serial


class TestScenarioCheckpointing:
    def _spec(self):
        return ScenarioSpec(
            algorithm="abe-election",
            topology={"kind": "uniring", "params": {"n": 6}},
            seed=5,
            trials=3,
            label="resume-test",
        )

    def test_run_scenario_resumes_bit_identically(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = run_scenario(self._spec(), workers=1, checkpoint=CheckpointJournal(path))
        assert len(CheckpointJournal(path, resume=True)) == 3
        resumed = run_scenario(
            self._spec(), workers=1, checkpoint=CheckpointJournal(path, resume=True)
        )
        assert resumed == first

    def test_ambient_policy_journal_is_consulted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        policy = ExecutionPolicy(checkpoint=CheckpointJournal(path))
        with active_policy(policy):
            first = run_scenario(self._spec(), workers=1)
        resume_policy = ExecutionPolicy(checkpoint=CheckpointJournal(path, resume=True))
        with active_policy(resume_policy):
            resumed = run_scenario(self._spec(), workers=1)
        assert resumed == first


class TestCLIResilienceFlags:
    def test_parser_accepts_resilience_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "experiment", "e4",
                "--trial-timeout", "30",
                "--retries", "1",
                "--checkpoint", "journal.jsonl",
            ]
        )
        assert args.trial_timeout == 30.0
        assert args.retries == 1
        assert args.checkpoint == "journal.jsonl"
        assert args.resume is False

    def test_resume_without_checkpoint_rejected(self, tmp_path):
        from repro.experiments.runner import execution_policy_from_args

        args = type("Args", (), {
            "trial_timeout": None, "retries": None, "checkpoint": None, "resume": True,
        })()
        with pytest.raises(SystemExit):
            execution_policy_from_args(args)

    def test_scenario_checkpoint_then_resume_byte_identical_output(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "algorithm": "abe-election",
            "topology": {"kind": "uniring", "params": {"n": 6}},
            "seed": 5,
            "trials": 2,
            "label": "cli-resume",
        }))
        journal_path = tmp_path / "journal.jsonl"

        assert main(["scenario", str(spec_path), "--checkpoint", str(journal_path)]) == 0
        first = capsys.readouterr().out
        assert len(CheckpointJournal(journal_path, resume=True)) == 2

        assert main([
            "scenario", str(spec_path), "--checkpoint", str(journal_path), "--resume"
        ]) == 0
        resumed = capsys.readouterr().out
        assert resumed == first  # byte-identical report from the journal
