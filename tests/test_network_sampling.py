"""Tests for block-wise delay sampling (the channel hot-path fast path)."""

from __future__ import annotations

import random

import pytest

from repro.network.delays import (
    ConstantDelay,
    DelayDistribution,
    EmpiricalDelay,
    ErlangDelay,
    ExponentialDelay,
    HyperExponentialDelay,
    LogNormalDelay,
    MixtureDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TruncatedDelay,
    UniformDelay,
    WeibullDelay,
)
from repro.network.network import Network, NetworkConfig
from repro.network.queueing import MM1SojournDelay
from repro.network.retransmission import GeometricRetransmissionDelay
from repro.network.routing import DynamicRoutingDelay
from repro.network.sampling import BlockDelaySampler
from repro.network.topology import unidirectional_ring

VECTORIZED_DISTRIBUTIONS = [
    ConstantDelay(1.5),
    UniformDelay(0.5, 2.5),
    ExponentialDelay(mean=1.2),
    ShiftedExponentialDelay(offset=0.4, exp_mean=0.8),
    ErlangDelay(shape=4, stage_mean=0.3),
    ParetoDelay(alpha=3.0, scale=0.5),
    LogNormalDelay(mean=1.0, sigma=0.8),
    WeibullDelay(shape=1.5, scale=1.0),
    # Closed the exact-mode gap: these used to loop scalar draws per block.
    HyperExponentialDelay([0.7, 0.3], [0.5, 2.0]),
    MixtureDelay([(0.6, ExponentialDelay(mean=0.8)), (0.4, UniformDelay(0.5, 1.5))]),
    EmpiricalDelay([0.2, 0.7, 1.3, 2.9]),
    MM1SojournDelay(arrival_rate=1.0, service_rate=2.0),
    GeometricRetransmissionDelay(0.4, transmission_time=0.5),
    DynamicRoutingDelay(base_hops=2, detour_probability=0.3, per_hop_mean=0.5),
]


class _ScalarOnlyDelay(DelayDistribution):
    """A distribution that deliberately has no vectorized sampler."""

    def sample(self, rng: random.Random) -> float:
        return rng.random()

    def mean(self) -> float:
        return 0.5


class TestSampleBlock:
    @pytest.mark.parametrize("dist", VECTORIZED_DISTRIBUTIONS, ids=repr)
    def test_sample_block_matches_repeated_sample(self, dist):
        """The scalar block API must be bit-identical to per-message sampling."""
        block = dist.sample_block(random.Random(42), 64)
        scalar = [dist.sample(random.Random(42)) for _ in range(1)]  # first value
        assert block[0] == scalar[0]
        rng = random.Random(42)
        assert block == [dist.sample(rng) for _ in range(64)]

    def test_sample_block_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDelay().sample_block(random.Random(0), -1)

    @pytest.mark.parametrize("dist", VECTORIZED_DISTRIBUTIONS, ids=repr)
    def test_sample_array_statistics(self, dist):
        import numpy as np

        gen = np.random.default_rng(7)
        values = dist.sample_array(gen, 20_000)
        assert len(values) == 20_000
        assert float(values.min()) >= 0.0
        assert float(values.mean()) == pytest.approx(dist.mean(), rel=0.15)

    def test_unsupported_distribution_has_no_vectorized_sampler(self):
        dist = _ScalarOnlyDelay()
        assert not dist.supports_vectorized()
        with pytest.raises(NotImplementedError):
            dist.sample_array(None, 8)

    def test_vectorized_support_is_composition_aware(self):
        """Wrappers inherit vectorization from what they wrap."""
        assert TruncatedDelay(ExponentialDelay(1.0), cap=3.0).supports_vectorized()
        assert not TruncatedDelay(_ScalarOnlyDelay(), cap=3.0).supports_vectorized()
        assert not MixtureDelay(
            [(0.5, ExponentialDelay(1.0)), (0.5, _ScalarOnlyDelay())]
        ).supports_vectorized()
        assert not DynamicRoutingDelay(
            base_hops=2, per_hop_delay=_ScalarOnlyDelay()
        ).supports_vectorized()

    def test_truncated_sample_array_respects_cap(self):
        import numpy as np

        dist = TruncatedDelay(ExponentialDelay(mean=2.0), cap=1.5)
        values = dist.sample_array(np.random.default_rng(11), 10_000)
        assert float(values.max()) <= 1.5
        assert float(values.min()) >= 0.0
        # The conditional mean is below the reported (upper-bound) mean.
        assert float(values.mean()) < dist.mean()

    def test_routing_sample_array_matches_hop_structure(self):
        import numpy as np

        dist = DynamicRoutingDelay(
            base_hops=3, detour_probability=0.0, per_hop_delay=ConstantDelay(0.5)
        )
        values = dist.sample_array(np.random.default_rng(1), 256)
        assert np.allclose(values, 1.5)


class TestBlockDelaySampler:
    def test_exact_mode_is_bit_identical_to_scalar_sampling(self):
        dist = ExponentialDelay(mean=1.0)
        sampler = BlockDelaySampler(dist, random.Random(9), block_size=16, vectorized=False)
        reference_rng = random.Random(9)
        drawn = [sampler.next() for _ in range(50)]
        # The sampler consumed the stream block-wise, but the *values* are the
        # same sequence scalar sampling would produce.
        assert drawn == [dist.sample(reference_rng) for _ in range(50)]

    def test_vectorized_mode_is_deterministic(self):
        dist = ExponentialDelay(mean=1.0)
        first = BlockDelaySampler(dist, random.Random(5), block_size=8)
        second = BlockDelaySampler(dist, random.Random(5), block_size=8)
        assert [first.next() for _ in range(30)] == [second.next() for _ in range(30)]
        assert first.vectorized

    def test_vectorized_falls_back_for_unsupported_distributions(self):
        dist = _ScalarOnlyDelay()
        sampler = BlockDelaySampler(dist, random.Random(5), block_size=8)
        assert not sampler.vectorized
        assert all(0.0 <= sampler.next() < 1.0 for _ in range(20))

    def test_block_size_independence_in_vectorized_mode(self):
        """Values depend only on the seed stream, not on the block size."""
        dist = UniformDelay(0.0, 1.0)
        small = BlockDelaySampler(dist, random.Random(3), block_size=4)
        large = BlockDelaySampler(dist, random.Random(3), block_size=64)
        assert [small.next() for _ in range(20)] == [large.next() for _ in range(20)]

    @pytest.mark.parametrize("dist", VECTORIZED_DISTRIBUTIONS, ids=repr)
    def test_stream_identity_every_vectorized_distribution(self, dist):
        """Stream identity of the vectorized path, per distribution: the
        served stream is a pure function of the seed stream -- two samplers
        over equal rng states produce bit-identical streams."""
        assert dist.supports_vectorized()
        reference = BlockDelaySampler(dist, random.Random(13), block_size=64)
        twin = BlockDelaySampler(dist, random.Random(13), block_size=64)
        expected = [reference.next() for _ in range(40)]
        assert expected == [twin.next() for _ in range(40)]
        assert all(value >= 0.0 for value in expected)

    @pytest.mark.parametrize(
        "dist",
        [
            # Single-pass refills: the block schedule is invisible.  The
            # composite distributions (mixture, truncation, routing) refill
            # in several passes and are documented as block-schedule
            # sensitive, so they are deliberately absent here.
            ConstantDelay(1.5),
            UniformDelay(0.5, 2.5),
            ExponentialDelay(mean=1.2),
            HyperExponentialDelay([0.7, 0.3], [0.5, 2.0]),
            EmpiricalDelay([0.2, 0.7, 1.3, 2.9]),
            MM1SojournDelay(arrival_rate=1.0, service_rate=2.0),
            GeometricRetransmissionDelay(0.4, transmission_time=0.5),
        ],
        ids=repr,
    )
    def test_block_size_invisible_for_single_pass_distributions(self, dist):
        small = BlockDelaySampler(dist, random.Random(13), block_size=5)
        large = BlockDelaySampler(dist, random.Random(13), block_size=64)
        assert [small.next() for _ in range(40)] == [large.next() for _ in range(40)]

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDelaySampler(ExponentialDelay(), random.Random(0), block_size=0)
        with pytest.raises(TypeError):
            BlockDelaySampler(object(), random.Random(0))


class TestNetworkBatchSampling:
    def _echo_network(self, batch_sampling: bool, seed: int = 4) -> Network:
        from repro.network.node import NodeProgram

        class Quiet(NodeProgram):
            def on_start(self):
                pass

            def on_message(self, payload, port):
                pass

        config = NetworkConfig(
            topology=unidirectional_ring(4),
            delay_model=ExponentialDelay(mean=1.0),
            seed=seed,
            batch_sampling=batch_sampling,
        )
        return Network(config, program_factory=lambda uid: Quiet())

    def test_batch_sampling_builds_samplers(self):
        network = self._echo_network(batch_sampling=True)
        assert all(channel.delay_sampler is not None for channel in network.channels)
        assert all(channel.delay_sampler.vectorized for channel in network.channels)

    def test_default_has_no_samplers(self):
        network = self._echo_network(batch_sampling=False)
        assert all(channel.delay_sampler is None for channel in network.channels)

    def test_reassigning_delay_model_drops_stale_sampler(self):
        """A sampler prefetched for the old distribution must not survive a
        delay-model swap (the new model would be silently ignored).  The
        batch-configured channel gets a *fresh* sampler for the new model
        instead of silently degrading to per-message sampling."""
        network = self._echo_network(batch_sampling=True)
        channel = network.channels[0]
        stale = channel.delay_sampler
        assert stale is not None  # construction keeps it
        channel.delay_model = ConstantDelay(2.0)
        rebuilt = channel.delay_sampler
        assert rebuilt is not None and rebuilt is not stale
        assert rebuilt.distribution is channel.delay_model
        assert rebuilt.block_size == stale.block_size
        # Every draw served after the swap comes from the new distribution.
        assert all(rebuilt.next() == 2.0 for _ in range(5))

    def test_batched_election_is_deterministic_per_seed(self):
        from repro.core.runner import run_election

        first = run_election(8, a0=0.3, seed=11, batch_sampling=True)
        second = run_election(8, a0=0.3, seed=11, batch_sampling=True)
        assert first == second
        assert first.elected

    def test_batched_election_still_elects_across_seeds(self):
        from repro.core.runner import run_election

        for seed in range(3):
            assert run_election(8, a0=0.3, seed=seed, batch_sampling=True).elected
