"""Tests for block-wise delay sampling (the channel hot-path fast path)."""

from __future__ import annotations

import random

import pytest

from repro.network.delays import (
    ConstantDelay,
    ErlangDelay,
    ExponentialDelay,
    HyperExponentialDelay,
    LogNormalDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    UniformDelay,
    WeibullDelay,
)
from repro.network.network import Network, NetworkConfig
from repro.network.sampling import BlockDelaySampler
from repro.network.topology import unidirectional_ring

VECTORIZED_DISTRIBUTIONS = [
    ConstantDelay(1.5),
    UniformDelay(0.5, 2.5),
    ExponentialDelay(mean=1.2),
    ShiftedExponentialDelay(offset=0.4, exp_mean=0.8),
    ErlangDelay(shape=4, stage_mean=0.3),
    ParetoDelay(alpha=3.0, scale=0.5),
    LogNormalDelay(mean=1.0, sigma=0.8),
    WeibullDelay(shape=1.5, scale=1.0),
]


class TestSampleBlock:
    @pytest.mark.parametrize("dist", VECTORIZED_DISTRIBUTIONS, ids=repr)
    def test_sample_block_matches_repeated_sample(self, dist):
        """The scalar block API must be bit-identical to per-message sampling."""
        block = dist.sample_block(random.Random(42), 64)
        scalar = [dist.sample(random.Random(42)) for _ in range(1)]  # first value
        assert block[0] == scalar[0]
        rng = random.Random(42)
        assert block == [dist.sample(rng) for _ in range(64)]

    def test_sample_block_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDelay().sample_block(random.Random(0), -1)

    @pytest.mark.parametrize("dist", VECTORIZED_DISTRIBUTIONS, ids=repr)
    def test_sample_array_statistics(self, dist):
        import numpy as np

        gen = np.random.default_rng(7)
        values = dist.sample_array(gen, 20_000)
        assert len(values) == 20_000
        assert float(values.min()) >= 0.0
        assert float(values.mean()) == pytest.approx(dist.mean(), rel=0.15)

    def test_unsupported_distribution_has_no_vectorized_sampler(self):
        dist = HyperExponentialDelay([0.5, 0.5], [1.0, 2.0])
        assert not dist.supports_vectorized()
        with pytest.raises(NotImplementedError):
            dist.sample_array(None, 8)


class TestBlockDelaySampler:
    def test_exact_mode_is_bit_identical_to_scalar_sampling(self):
        dist = ExponentialDelay(mean=1.0)
        sampler = BlockDelaySampler(dist, random.Random(9), block_size=16, vectorized=False)
        reference_rng = random.Random(9)
        drawn = [sampler.next() for _ in range(50)]
        # The sampler consumed the stream block-wise, but the *values* are the
        # same sequence scalar sampling would produce.
        assert drawn == [dist.sample(reference_rng) for _ in range(50)]

    def test_vectorized_mode_is_deterministic(self):
        dist = ExponentialDelay(mean=1.0)
        first = BlockDelaySampler(dist, random.Random(5), block_size=8)
        second = BlockDelaySampler(dist, random.Random(5), block_size=8)
        assert [first.next() for _ in range(30)] == [second.next() for _ in range(30)]
        assert first.vectorized

    def test_vectorized_falls_back_for_unsupported_distributions(self):
        dist = HyperExponentialDelay([0.5, 0.5], [1.0, 2.0])
        sampler = BlockDelaySampler(dist, random.Random(5), block_size=8)
        assert not sampler.vectorized
        assert all(sampler.next() >= 0.0 for _ in range(20))

    def test_block_size_independence_in_vectorized_mode(self):
        """Values depend only on the seed stream, not on the block size."""
        dist = UniformDelay(0.0, 1.0)
        small = BlockDelaySampler(dist, random.Random(3), block_size=4)
        large = BlockDelaySampler(dist, random.Random(3), block_size=64)
        assert [small.next() for _ in range(20)] == [large.next() for _ in range(20)]

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDelaySampler(ExponentialDelay(), random.Random(0), block_size=0)
        with pytest.raises(TypeError):
            BlockDelaySampler(object(), random.Random(0))


class TestNetworkBatchSampling:
    def _echo_network(self, batch_sampling: bool, seed: int = 4) -> Network:
        from repro.network.node import NodeProgram

        class Quiet(NodeProgram):
            def on_start(self):
                pass

            def on_message(self, payload, port):
                pass

        config = NetworkConfig(
            topology=unidirectional_ring(4),
            delay_model=ExponentialDelay(mean=1.0),
            seed=seed,
            batch_sampling=batch_sampling,
        )
        return Network(config, program_factory=lambda uid: Quiet())

    def test_batch_sampling_builds_samplers(self):
        network = self._echo_network(batch_sampling=True)
        assert all(channel.delay_sampler is not None for channel in network.channels)
        assert all(channel.delay_sampler.vectorized for channel in network.channels)

    def test_default_has_no_samplers(self):
        network = self._echo_network(batch_sampling=False)
        assert all(channel.delay_sampler is None for channel in network.channels)

    def test_reassigning_delay_model_drops_stale_sampler(self):
        """A sampler prefetched for the old distribution must not survive a
        delay-model swap (the new model would be silently ignored).  The
        batch-configured channel gets a *fresh* sampler for the new model
        instead of silently degrading to per-message sampling."""
        network = self._echo_network(batch_sampling=True)
        channel = network.channels[0]
        stale = channel.delay_sampler
        assert stale is not None  # construction keeps it
        channel.delay_model = ConstantDelay(2.0)
        rebuilt = channel.delay_sampler
        assert rebuilt is not None and rebuilt is not stale
        assert rebuilt.distribution is channel.delay_model
        assert rebuilt.block_size == stale.block_size
        # Every draw served after the swap comes from the new distribution.
        assert all(rebuilt.next() == 2.0 for _ in range(5))

    def test_batched_election_is_deterministic_per_seed(self):
        from repro.core.runner import run_election

        first = run_election(8, a0=0.3, seed=11, batch_sampling=True)
        second = run_election(8, a0=0.3, seed=11, batch_sampling=True)
        assert first == second
        assert first.elected

    def test_batched_election_still_elects_across_seeds(self):
        from repro.core.runner import run_election

        for seed in range(3):
            assert run_election(8, a0=0.3, seed=seed, batch_sampling=True).elected
