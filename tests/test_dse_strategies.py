"""Search strategies: rounds, promotion, and the successive-halving properties."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.space import SearchSpace, point_key
from repro.dse.strategies import (
    STRATEGIES,
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    build_strategy,
)

BASE = {
    "algorithm": "abe-election",
    "topology": {"kind": "uniring", "params": {"n": 5}},
    "seed": 3,
    "trials": 2,
}

#: 4 x 3 exhaustive space (both axes discrete).
DISCRETE = SearchSpace.from_dict(
    {
        "base": BASE,
        "dimensions": [
            {"name": "n", "kind": "int-range", "field": "topology.params.n", "low": 4, "high": 10, "step": 2},
            {"name": "a0", "kind": "categorical", "field": "a0", "choices": [0.1, 0.2, 0.3]},
        ],
    }
)

#: Continuous space: sampling never exhausts it.
CONTINUOUS = SearchSpace.from_dict(
    {
        "base": BASE,
        "dimensions": [
            {"name": "a0", "kind": "log-uniform", "field": "a0", "low": 0.01, "high": 0.5},
        ],
    }
)


def _drive(strategy, space, seed, losses_of):
    """Run the strategy loop with a pure loss function; returns the rounds."""
    rng = random.Random(seed)
    rounds = []
    current = strategy.first_round(space, rng, 4)
    while current is not None:
        rounds.append(current)
        losses = [losses_of(point) for point in current.points]
        current = strategy.next_round(space, rng, current, losses)
    return rounds


class TestRegistry:
    def test_known_strategies(self):
        assert STRATEGIES.known() == ["grid", "random", "successive-halving"]

    def test_build_from_node_dict(self):
        strategy = build_strategy({"kind": "successive-halving", "params": {"candidates": 4}})
        assert isinstance(strategy, SuccessiveHalving)
        assert strategy.candidates == 4

    def test_unknown_strategy_names_candidates(self):
        with pytest.raises(ValueError, match="known search strategies"):
            build_strategy({"kind": "bayesian"})

    def test_bad_params_are_readable(self):
        with pytest.raises(ValueError, match="successive-halving"):
            build_strategy({"kind": "successive-halving", "params": {"rung": 3}})


class TestGridAndRandom:
    def test_grid_is_one_round_of_the_whole_grid(self):
        rounds = _drive(GridSearch(), DISCRETE, 0, lambda p: 0.0)
        assert len(rounds) == 1
        assert len(rounds[0].points) == 12
        assert rounds[0].budget == 4  # the default budget

    def test_grid_trials_override(self):
        rounds = _drive(GridSearch(trials=9), DISCRETE, 0, lambda p: 0.0)
        assert rounds[0].budget == 9

    def test_random_draws_distinct_points(self):
        rounds = _drive(RandomSearch(samples=8), DISCRETE, 1, lambda p: 0.0)
        keys = [point_key(p) for p in rounds[0].points]
        assert len(set(keys)) == len(keys) == 8

    def test_random_caps_at_space_size(self):
        rounds = _drive(RandomSearch(samples=100), DISCRETE, 1, lambda p: 0.0)
        assert len(rounds[0].points) == 12


class TestSuccessiveHalving:
    def test_small_exhaustive_space_is_enumerated(self):
        strategy = SuccessiveHalving(candidates=16, eta=2, base_trials=1)
        rng = random.Random(0)
        first = strategy.first_round(DISCRETE, rng, 4)
        assert sorted(point_key(p) for p in first.points) == sorted(
            point_key(p) for p in DISCRETE.grid()
        )

    def test_rungs_deepen_until_one_survivor_by_default(self):
        strategy = SuccessiveHalving(candidates=8, eta=2, base_trials=1)
        rounds = _drive(strategy, CONTINUOUS, 5, lambda p: p["a0"])
        assert [len(r.points) for r in rounds] == [8, 4, 2, 1]
        assert [r.budget for r in rounds] == [1, 2, 4, 8]

    def test_promotion_keeps_the_best_by_loss(self):
        strategy = SuccessiveHalving(candidates=4, eta=2, base_trials=1, rungs=2)
        rounds = _drive(strategy, CONTINUOUS, 5, lambda p: p["a0"])
        survivors = {point_key(p) for p in rounds[1].points}
        ranked = sorted(rounds[0].points, key=lambda p: (p["a0"], point_key(p)))
        assert survivors == {point_key(p) for p in ranked[:2]}

    # ------------------------------------------------ hypothesis properties

    @given(
        candidates=st.integers(min_value=2, max_value=16),
        eta=st.integers(min_value=2, max_value=4),
        base_trials=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_survivors_are_a_subset_and_budgets_strictly_increase(
        self, candidates, eta, base_trials, seed
    ):
        strategy = SuccessiveHalving(candidates=candidates, eta=eta, base_trials=base_trials)
        loss_rng = random.Random(seed ^ 0xABE)
        losses = {}

        def loss_of(point):
            return losses.setdefault(point_key(point), loss_rng.random())

        rounds = _drive(strategy, CONTINUOUS, seed, loss_of)
        assert rounds, "at least one rung"
        for earlier, later in zip(rounds, rounds[1:]):
            earlier_keys = {point_key(p) for p in earlier.points}
            later_keys = {point_key(p) for p in later.points}
            assert later_keys <= earlier_keys  # survivors ⊆ candidates
            assert later.budget > earlier.budget  # rung budgets strictly increase
            assert len(later.points) < len(earlier.points)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_winner_is_deterministic_for_a_fixed_seed(self, seed):
        strategy = SuccessiveHalving(candidates=6, eta=2, base_trials=1)

        def run():
            loss_rng = random.Random(seed + 1)
            losses = {}

            def loss_of(point):
                return losses.setdefault(point_key(point), loss_rng.random())

            rounds = _drive(strategy, CONTINUOUS, seed, loss_of)
            final = rounds[-1]
            ranked = sorted(
                zip(final.points, [loss_of(p) for p in final.points]),
                key=lambda pair: (pair[1], point_key(pair[0])),
            )
            return point_key(ranked[0][0])

        assert run() == run()
