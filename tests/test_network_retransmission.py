"""Unit tests for the lossy-channel retransmission model (Section 1, case iii)."""

from __future__ import annotations

import random

import pytest

from repro.network.retransmission import (
    GeometricRetransmissionDelay,
    LossyChannelModel,
    expected_delay,
    expected_transmissions,
    tail_probability,
)


class TestClosedForms:
    def test_expected_transmissions_is_one_over_p(self):
        assert expected_transmissions(0.5) == pytest.approx(2.0)
        assert expected_transmissions(0.1) == pytest.approx(10.0)
        assert expected_transmissions(1.0) == pytest.approx(1.0)

    def test_expected_delay_scales_with_transmission_time(self):
        assert expected_delay(0.5, transmission_time=2.0) == pytest.approx(4.0)

    def test_tail_probability_formula(self):
        assert tail_probability(0.5, 0) == pytest.approx(1.0)
        assert tail_probability(0.5, 3) == pytest.approx(0.125)
        # The paper's unboundedness argument: the tail never reaches zero.
        assert all(tail_probability(0.3, k) > 0 for k in range(0, 50, 5))

    def test_probability_validation(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                expected_transmissions(bad)
        with pytest.raises(ValueError):
            expected_delay(0.5, transmission_time=0.0)
        with pytest.raises(ValueError):
            tail_probability(0.5, -1)


class TestGeometricRetransmissionDelay:
    def test_mean_matches_one_over_p(self):
        dist = GeometricRetransmissionDelay(0.25, transmission_time=1.0)
        assert dist.mean() == pytest.approx(4.0)

    def test_unbounded_but_finite_mean(self):
        dist = GeometricRetransmissionDelay(0.5)
        assert dist.bound() is None
        assert dist.has_finite_mean()

    def test_samples_are_positive_multiples_of_transmission_time(self, rng):
        dist = GeometricRetransmissionDelay(0.4, transmission_time=0.5)
        for value in dist.sample_many(rng, 2000):
            assert value >= 0.5
            assert (value / 0.5) == pytest.approx(round(value / 0.5))

    def test_empirical_mean_matches_theory(self, rng):
        for p in (0.2, 0.5, 0.8):
            dist = GeometricRetransmissionDelay(p)
            empirical = sum(dist.sample_many(rng, 20_000)) / 20_000
            assert empirical == pytest.approx(1.0 / p, rel=0.05)

    def test_certain_success_always_one_transmission(self, rng):
        dist = GeometricRetransmissionDelay(1.0)
        assert all(dist.sample_transmissions(rng) == 1 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricRetransmissionDelay(0.0)
        with pytest.raises(ValueError):
            GeometricRetransmissionDelay(0.5, transmission_time=0.0)


class TestLossyChannelModel:
    def test_attempts_end_with_success(self, rng):
        channel = LossyChannelModel(0.3)
        attempts = channel.transmit(rng)
        assert attempts[-1].success
        assert all(not a.success for a in attempts[:-1])

    def test_attempt_timing_is_contiguous(self, rng):
        channel = LossyChannelModel(0.5, transmission_time=2.0)
        attempts = channel.transmit(rng, start_time=10.0)
        assert attempts[0].start_time == 10.0
        for previous, current in zip(attempts, attempts[1:]):
            assert current.start_time == pytest.approx(previous.end_time)
        assert all(a.end_time - a.start_time == pytest.approx(2.0) for a in attempts)

    def test_observed_mean_matches_one_over_p(self, rng):
        channel = LossyChannelModel(0.25)
        for _ in range(20_000):
            channel.transmit(rng)
        assert channel.observed_mean_attempts() == pytest.approx(4.0, rel=0.05)
        assert channel.theoretical_mean_attempts() == pytest.approx(4.0)

    def test_mechanistic_model_agrees_with_closed_form_distribution(self):
        channel = LossyChannelModel(0.5, transmission_time=1.0)
        dist = channel.as_delay_distribution()
        rng_a, rng_b = random.Random(3), random.Random(3)
        mech = [channel.delivery_delay(rng_a) for _ in range(5000)]
        closed = dist.sample_many(rng_b, 5000)
        mech_mean = sum(mech) / len(mech)
        closed_mean = sum(closed) / len(closed)
        assert mech_mean == pytest.approx(closed_mean, rel=0.1)

    def test_max_attempts_cap(self, rng):
        channel = LossyChannelModel(0.001, max_attempts=5)
        attempts = channel.transmit(rng)
        assert len(attempts) <= 5

    def test_observed_mean_before_any_message_is_zero(self):
        channel = LossyChannelModel(0.5)
        assert channel.observed_mean_attempts() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LossyChannelModel(1.5)
        with pytest.raises(ValueError):
            LossyChannelModel(0.5, transmission_time=-1.0)
        with pytest.raises(ValueError):
            LossyChannelModel(0.5, max_attempts=0)


class TestRetransmissionDuplicationVsMessagePool:
    """Audit of the HopMessage pool against duplicate deliveries.

    A retransmission layer that duplicates an envelope (the same logical
    message delivered more than once, e.g. an ACK lost after a successful
    transmission) holds references to the envelope and its payload beyond the
    first delivery.  The channel's exact refcount guard must therefore never
    hand such a payload to the :class:`~repro.core.messages.HopMessagePool`
    -- a pooled message renewed while a duplicate is still in flight would be
    observed mutated by the second delivery.
    """

    def _build(self, n=8, seed=3):
        from repro.core.runner import build_election_network
        from repro.network.delays import ExponentialDelay
        from repro.network.retransmission import GeometricRetransmissionDelay

        return build_election_network(
            n,
            a0=0.3,
            seed=seed,
            delay=GeometricRetransmissionDelay(0.5, transmission_time=1.0),
        )

    def test_duplicated_envelopes_keep_their_payload_out_of_the_pool(self):
        from repro.core.messages import HopMessage
        from repro.core.runner import run_election_on_network

        network, status = self._build()
        duplicates = []

        # A retransmission-style wrapper on one channel: every transmitted
        # envelope is also remembered (the "retransmit copy"), exactly like a
        # sender that may have to resend.  The copy outlives the delivery.
        channel = network.channels[0]
        original_transmit = channel.transmit

        def duplicating_transmit(payload):
            envelope = original_transmit(payload)
            duplicates.append((envelope, envelope.payload, envelope.payload.hop,
                               envelope.payload.token_id, envelope.payload.knockout))
            return envelope

        channel.transmit = duplicating_transmit
        result = run_election_on_network(network, status)
        assert result.elected

        # Every remembered payload must be exactly as it was at hand-off:
        # the refcount guard saw the duplicate's references and refused to
        # renew the message, even though thousands of other messages were
        # pooled and recycled meanwhile.
        assert duplicates, "the wrapped channel never transmitted"
        for envelope, payload, hop, token_id, knockout in duplicates:
            assert isinstance(payload, HopMessage)
            assert payload.hop == hop
            assert payload.token_id == token_id
            assert payload.knockout == knockout
            assert envelope.payload is payload or envelope.payload is None

    def test_double_release_is_rejected(self):
        from repro.core.messages import HopMessagePool

        pool = HopMessagePool()
        message = pool.acquire(2)
        pool.release(message)
        with pytest.raises(RuntimeError, match="released twice"):
            pool.release(message)

    def test_pool_recycles_on_the_plain_election_path(self):
        """Sanity check that the guard is not so strict it never recycles:
        an untraced election with no duplication reuses message records."""
        from repro.core.runner import build_election_network, run_election_on_network

        network, status = build_election_network(8, a0=0.3, seed=1)
        pools = {id(node.program.hop_pool) for node in network.nodes}
        assert len(pools) == 1  # one shared pool per run
        pool = network.nodes[0].program.hop_pool
        run_election_on_network(network, status)
        assert len(pool) > 0, "no message was ever recycled"
