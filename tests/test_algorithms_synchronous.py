"""Tests for the synchronous-algorithm framework and its client algorithms."""

from __future__ import annotations

import pytest

from repro.algorithms.synchronous import (
    FloodingSync,
    MaxComputationSync,
    RoundCounterSync,
    SyncContext,
    SynchronousExecutor,
)
from repro.network.topology import (
    bidirectional_ring,
    grid_topology,
    line_topology,
    star_topology,
)


class TestSynchronousExecutor:
    def test_max_computation_converges_to_global_max(self):
        topology = bidirectional_ring(10)
        values = {uid: (uid * 13) % 31 for uid in range(10)}
        executor = SynchronousExecutor(
            topology, lambda uid: MaxComputationSync(values[uid], rounds_needed=10)
        )
        outcome = executor.run()
        assert all(result == max(values.values()) for result in outcome.results)
        assert outcome.rounds == 10

    def test_max_computation_on_line_needs_diameter_rounds(self):
        topology = line_topology(6)
        executor = SynchronousExecutor(
            topology, lambda uid: MaxComputationSync(float(uid), rounds_needed=5)
        )
        outcome = executor.run()
        assert all(result == 5.0 for result in outcome.results)

    def test_flooding_informs_everyone_within_horizon(self):
        topology = star_topology(7)
        executor = SynchronousExecutor(
            topology,
            lambda uid: FloodingSync(is_initiator=(uid == 0), value="v", max_rounds=4),
        )
        outcome = executor.run()
        assert all(value == "v" for value, _ in outcome.results)

    def test_flooding_learned_round_matches_distance(self):
        topology = line_topology(5)
        executor = SynchronousExecutor(
            topology,
            lambda uid: FloodingSync(is_initiator=(uid == 0), value="v", max_rounds=6),
        )
        outcome = executor.run()
        learned_rounds = [round_index for _, round_index in outcome.results]
        # The initiator knows at "round -1"; node k learns in round k - 1
        # (its messages for round 0 are the initial sends).
        assert learned_rounds[0] == -1
        assert learned_rounds == sorted(learned_rounds)

    def test_round_counter_heartbeats(self):
        topology = bidirectional_ring(6)
        rounds = 5
        executor = SynchronousExecutor(topology, lambda uid: RoundCounterSync(rounds))
        outcome = executor.run()
        # Each node hears from both neighbours every round.
        assert all(result == 2 * rounds for result in outcome.results)
        assert outcome.algorithm_messages == 2 * 6 * rounds

    def test_executor_stops_at_max_rounds(self):
        topology = bidirectional_ring(4)
        executor = SynchronousExecutor(topology, lambda uid: RoundCounterSync(100))
        outcome = executor.run(max_rounds=3)
        assert outcome.rounds == 3

    def test_invalid_max_rounds(self):
        executor = SynchronousExecutor(
            bidirectional_ring(4), lambda uid: RoundCounterSync(1)
        )
        with pytest.raises(ValueError):
            executor.run(max_rounds=0)

    def test_addressing_nonexistent_port_raises(self):
        class BadProcess(RoundCounterSync):
            def initial_messages(self):
                return {99: "boom"}

        executor = SynchronousExecutor(bidirectional_ring(4), lambda uid: BadProcess(1))
        with pytest.raises(ValueError):
            executor.run()

    def test_grid_flooding_covers_grid(self):
        topology = grid_topology(3, 4)
        executor = SynchronousExecutor(
            topology,
            lambda uid: FloodingSync(is_initiator=(uid == 0), value=7, max_rounds=7),
        )
        outcome = executor.run()
        assert all(value == 7 for value, _ in outcome.results)


class TestSyncProcessProtocol:
    def test_setup_required_before_use(self):
        process = MaxComputationSync(1.0)
        with pytest.raises(RuntimeError):
            process.initial_messages()

    def test_context_is_stored(self):
        process = RoundCounterSync(2)
        ctx = SyncContext(uid=3, n=5, out_degree=2, in_degree=2)
        process.setup(ctx)
        assert process.ctx == ctx

    def test_round_counter_validation(self):
        with pytest.raises(ValueError):
            RoundCounterSync(0)

    def test_finished_flag_progression(self):
        process = RoundCounterSync(2)
        process.setup(SyncContext(uid=0, n=2, out_degree=1, in_degree=1))
        assert not process.finished
        process.initial_messages()
        process.compute(0, {})
        assert not process.finished
        process.compute(1, {})
        assert process.finished
