"""Unit tests for local clocks and drift models (Definition 1(2))."""

from __future__ import annotations

import random

import pytest

from repro.sim.clock import (
    ClockBoundsViolation,
    ConstantRateDrift,
    LocalClock,
    RandomWalkDrift,
    SinusoidalDrift,
)


class TestPerfectClock:
    def test_identity_when_rate_is_one(self):
        clock = LocalClock()
        assert clock.local_time(0.0) == pytest.approx(0.0)
        assert clock.local_time(12.5) == pytest.approx(12.5)

    def test_elapsed_local_matches_real_elapsed(self):
        clock = LocalClock()
        assert clock.elapsed_local(3.0, 8.0) == pytest.approx(5.0)

    def test_inverse_map_round_trips(self):
        clock = LocalClock()
        for real in (0.0, 1.7, 42.25):
            assert clock.real_time_for_local(clock.local_time(real)) == pytest.approx(real)


class TestConstantRate:
    def test_fast_clock_advances_faster(self):
        clock = LocalClock(s_low=2.0, s_high=2.0, drift_model=ConstantRateDrift(2.0))
        assert clock.local_time(10.0) == pytest.approx(20.0)

    def test_slow_clock_advances_slower(self):
        clock = LocalClock(s_low=0.5, s_high=0.5, drift_model=ConstantRateDrift(0.5))
        assert clock.local_time(10.0) == pytest.approx(5.0)

    def test_real_duration_for_local_inverts_rate(self):
        clock = LocalClock(s_low=2.0, s_high=2.0, drift_model=ConstantRateDrift(2.0))
        assert clock.real_duration_for_local(0.0, 4.0) == pytest.approx(2.0)

    def test_default_rate_is_midpoint_when_one_not_admissible(self):
        clock = LocalClock(s_low=2.0, s_high=4.0)
        # Rate must lie within the bounds even without an explicit drift model.
        elapsed = clock.elapsed_local(0.0, 1.0)
        assert 2.0 <= elapsed <= 4.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ConstantRateDrift(0.0)


class TestBounds:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LocalClock(s_low=0.0, s_high=1.0)
        with pytest.raises(ValueError):
            LocalClock(s_low=2.0, s_high=1.0)

    def test_rates_are_clamped_into_bounds(self):
        # The drift model tries to escape the bounds; the clock must clamp.
        clock = LocalClock(
            s_low=0.8,
            s_high=1.2,
            drift_model=RandomWalkDrift(initial_rate=1.0, step=5.0),
            rng=random.Random(3),
        )
        clock.verify_bounds(0.0, 200.0)
        for start in range(0, 200, 7):
            clock.verify_bounds(float(start), float(start + 7))

    def test_verify_bounds_raises_outside(self):
        clock = LocalClock(s_low=1.0, s_high=2.0, drift_model=ConstantRateDrift(2.0))
        # Materialise the rate-2 segments first, then tighten the declared
        # bounds: the already-generated behaviour now violates them.
        clock.local_time(10.0)
        clock.s_high = 1.5
        with pytest.raises(ClockBoundsViolation):
            clock.verify_bounds(0.0, 10.0)

    def test_rate_bounds_accessor(self):
        clock = LocalClock(s_low=0.5, s_high=1.5)
        assert clock.rate_bounds() == (0.5, 1.5)

    def test_reading_before_start_rejected(self):
        clock = LocalClock(start_real=5.0)
        with pytest.raises(ValueError):
            clock.local_time(4.0)


class TestDriftingClocks:
    def test_random_walk_stays_within_bounds_over_long_horizon(self):
        clock = LocalClock(
            s_low=0.5,
            s_high=2.0,
            drift_model=RandomWalkDrift(initial_rate=1.0, step=0.2),
            rng=random.Random(11),
        )
        clock.verify_bounds(0.0, 500.0)

    def test_sinusoidal_drift_oscillates(self):
        model = SinusoidalDrift(mean_rate=1.0, amplitude=0.5, period=10.0)
        rng = random.Random(0)
        rates = [model.next_rate(i, rng) for i in range(10)]
        assert max(rates) > 1.2
        assert min(rates) < 0.8

    def test_monotonicity_of_local_time(self):
        clock = LocalClock(
            s_low=0.25,
            s_high=2.0,
            drift_model=RandomWalkDrift(initial_rate=1.0, step=0.3),
            rng=random.Random(5),
        )
        readings = [clock.local_time(t / 4.0) for t in range(0, 400)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_inverse_map_on_drifting_clock(self):
        clock = LocalClock(
            s_low=0.5,
            s_high=2.0,
            drift_model=RandomWalkDrift(initial_rate=1.2, step=0.1),
            rng=random.Random(9),
        )
        for real in (0.3, 7.9, 55.2, 123.0):
            local = clock.local_time(real)
            assert clock.real_time_for_local(local) == pytest.approx(real, abs=1e-6)

    def test_real_duration_for_local_is_positive(self):
        clock = LocalClock(
            s_low=0.5,
            s_high=2.0,
            drift_model=RandomWalkDrift(initial_rate=1.0, step=0.2),
            rng=random.Random(2),
        )
        for start in (0.0, 3.7, 19.2):
            assert clock.real_duration_for_local(start, 1.0) > 0.0

    def test_drift_model_validation(self):
        with pytest.raises(ValueError):
            RandomWalkDrift(initial_rate=-1.0)
        with pytest.raises(ValueError):
            RandomWalkDrift(initial_rate=1.0, step=-0.1)
        with pytest.raises(ValueError):
            SinusoidalDrift(mean_rate=0.0)
        with pytest.raises(ValueError):
            SinusoidalDrift(mean_rate=1.0, amplitude=-1.0)
        with pytest.raises(ValueError):
            SinusoidalDrift(mean_rate=1.0, period=0.0)
