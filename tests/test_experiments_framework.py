"""Tests for the experiment framework: tables, runner, reporting, workloads."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_cell, format_table, render_experiment
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import mean_of_attribute, monte_carlo, trial_seeds
from repro.experiments.workloads import (
    DEFAULT_RING_SIZES,
    delay_families_with_mean,
    election_sweep,
    election_trials,
)


class TestResultTable:
    def test_add_row_and_column_access(self):
        table = ResultTable(title="t", columns=["n", "cost"])
        table.add_row(n=8, cost=1.5)
        table.add_row(n=16, cost=3.0)
        assert table.column("n") == [8, 16]
        assert len(table) == 2
        assert list(table)[0]["cost"] == 1.5

    def test_unknown_column_rejected(self):
        table = ResultTable(title="t", columns=["n"])
        with pytest.raises(ValueError):
            table.add_row(n=8, oops=1)

    def test_missing_column_lookup_rejected(self):
        table = ResultTable(title="t", columns=["n"])
        with pytest.raises(KeyError):
            table.column("cost")

    def test_notes(self):
        table = ResultTable(title="t", columns=["n"])
        table.add_note("hello")
        assert "hello" in format_table(table)


class TestExperimentResult:
    def _result(self):
        table = ResultTable(title="main", columns=["x"])
        table.add_row(x=1)
        return ExperimentResult(
            experiment_id="eX",
            title="demo",
            claim="a claim",
            tables=[table],
            findings={"ok": True, "value": 3.14},
            parameters={"n": 8},
        )

    def test_table_lookup(self):
        result = self._result()
        assert result.table().title == "main"
        assert result.table("main").title == "main"
        with pytest.raises(KeyError):
            result.table("other")

    def test_empty_tables_rejected_on_access(self):
        result = ExperimentResult(experiment_id="e", title="t", claim="c")
        with pytest.raises(ValueError):
            result.table()

    def test_finding_access(self):
        result = self._result()
        assert result.finding("ok") is True
        with pytest.raises(KeyError):
            result.finding("missing")

    def test_render_experiment_includes_everything(self):
        text = render_experiment(self._result())
        assert "EX" in text
        assert "a claim" in text
        assert "findings:" in text
        assert "parameters:" in text


class TestReportingFormat:
    def test_format_cell_variants(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(None) == "-"
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(123456.0) == "1.235e+05"
        assert format_cell(0.00001) == "1.000e-05"
        assert format_cell("text") == "text"

    def test_format_table_alignment(self):
        table = ResultTable(title="widths", columns=["algorithm", "n"])
        table.add_row(algorithm="abe-election", n=8)
        text = format_table(table)
        lines = text.splitlines()
        assert lines[0] == "widths"
        assert "algorithm" in lines[2]
        assert "abe-election" in lines[-1]


class TestTrialSeeds:
    def test_deterministic_and_distinct(self):
        seeds = trial_seeds(42, 10)
        assert seeds == trial_seeds(42, 10)
        assert len(set(seeds)) == 10

    def test_label_separates_families(self):
        assert trial_seeds(42, 3, label="a") != trial_seeds(42, 3, label="b")

    def test_prefix_stability_when_adding_trials(self):
        assert trial_seeds(42, 3) == trial_seeds(42, 5)[:3]

    def test_validation(self):
        with pytest.raises(ValueError):
            trial_seeds(42, 0)

    def test_monte_carlo_collects_and_filters(self):
        outcomes = monte_carlo(lambda seed: seed % 3, trials=9, base_seed=1)
        assert len(outcomes) == 9
        filtered = monte_carlo(
            lambda seed: seed % 3, trials=9, base_seed=1, keep=lambda v: v == 0
        )
        assert all(v == 0 for v in filtered)

    def test_mean_of_attribute(self):
        class Point:
            def __init__(self, value):
                self.value = value

        assert mean_of_attribute([Point(1.0), Point(3.0)], "value") == 2.0
        assert mean_of_attribute([Point(1.0), Point(None)], "value") == 1.0
        with pytest.raises(ValueError):
            mean_of_attribute([Point(None)], "value")


class TestWorkloads:
    def test_default_sizes_are_increasing(self):
        assert list(DEFAULT_RING_SIZES) == sorted(DEFAULT_RING_SIZES)

    def test_delay_families_share_the_mean(self):
        for mean_value in (0.5, 1.0, 2.0):
            for name, delay in delay_families_with_mean(mean_value).items():
                assert delay.mean() == pytest.approx(mean_value, rel=1e-6), name

    def test_delay_families_validation(self):
        with pytest.raises(ValueError):
            delay_families_with_mean(0.0)

    def test_election_trials_runs_requested_number(self):
        results = election_trials(8, trials=4, base_seed=3)
        assert len(results) == 4
        assert all(r.n == 8 for r in results)
        assert all(r.elected for r in results)

    def test_election_sweep_keys_by_size(self):
        sweep = election_sweep([4, 8], trials=2, base_seed=3)
        assert set(sweep) == {4, 8}
        assert all(len(v) == 2 for v in sweep.values())
