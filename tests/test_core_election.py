"""Unit and integration tests for the ABE election algorithm (Section 3)."""

from __future__ import annotations

import pytest

from repro.core.activation import AdaptiveActivation
from repro.core.analysis import recommended_a0
from repro.core.election import AbeElectionProgram, ElectionStatus, NodeState
from repro.core.messages import HopMessage
from repro.core.runner import build_election_network, run_election, run_election_on_network
from repro.core.verification import ElectionInvariantError, verify_election
from repro.network.delays import ConstantDelay, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.topology import line_topology, unidirectional_ring


class TestStateMachineRules:
    """Direct tests of the per-node transition rules (no full simulation)."""

    def _bound_program(self, n=4, **kwargs):
        status = ElectionStatus()
        program = AbeElectionProgram(status, schedule=AdaptiveActivation(0.3), **kwargs)
        config = NetworkConfig(
            topology=unidirectional_ring(n), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(config, lambda uid: AbeElectionProgram(ElectionStatus()))
        # Rebind our program onto node 0 so its sends go to a real channel.
        network.nodes[0].program = program
        program.bind(network.nodes[0])
        program.state = NodeState.IDLE
        program.d = 1
        return program, status, network

    def test_rule_i_idle_becomes_passive_and_forwards_d_plus_one(self):
        program, status, network = self._bound_program()
        program.d = 2
        program.on_receive(HopMessage(hop=1), port=0)
        assert program.state is NodeState.PASSIVE
        # d stays max(2, 1) = 2, so the forwarded hop is 3.
        sent = network.tracer.filter(category="send", subject=0)
        assert sent[-1].details["payload"].hop == 3
        assert status.knockouts == 1

    def test_receive_updates_d_to_max(self):
        program, _, _ = self._bound_program()
        program.state = NodeState.PASSIVE
        program.on_receive(HopMessage(hop=3), port=0)
        assert program.d == 3
        program.on_receive(HopMessage(hop=2), port=0)
        assert program.d == 3

    def test_rule_ii_passive_forwards(self):
        program, status, network = self._bound_program()
        program.state = NodeState.PASSIVE
        program.on_receive(HopMessage(hop=2), port=0)
        assert program.state is NodeState.PASSIVE
        sent = network.tracer.filter(category="send", subject=0)
        assert sent[-1].details["payload"].hop == 3
        # Forwarding at a passive node is not a knockout.
        assert status.knockouts == 0

    def test_rule_iii_active_purges_and_becomes_idle(self):
        program, _, network = self._bound_program()
        program.state = NodeState.ACTIVE
        before = network.messages_sent()
        program.on_receive(HopMessage(hop=2), port=0)
        assert program.state is NodeState.IDLE
        assert network.messages_sent() == before  # purged, nothing forwarded

    def test_rule_iii_active_becomes_leader_on_hop_n(self):
        program, status, _ = self._bound_program(n=4)
        program.state = NodeState.ACTIVE
        program.on_receive(HopMessage(hop=4), port=0)
        assert program.state is NodeState.LEADER
        assert program.is_leader
        assert status.leader_uid == 0
        assert status.leaders_elected == 1

    def test_leader_purges_residual_messages(self):
        program, _, network = self._bound_program(n=4)
        program.state = NodeState.ACTIVE
        program.on_receive(HopMessage(hop=4), port=0)
        before = network.messages_sent()
        program.on_receive(HopMessage(hop=2), port=0)
        assert network.messages_sent() == before
        assert program.state is NodeState.LEADER

    def test_non_hop_payload_rejected(self):
        program, _, _ = self._bound_program()
        with pytest.raises(TypeError):
            program.on_receive("garbage", port=0)

    def test_result_reports_state(self):
        program, _, _ = self._bound_program()
        assert program.result() is NodeState.IDLE

    def test_tick_period_validation(self):
        with pytest.raises(ValueError):
            AbeElectionProgram(ElectionStatus(), tick_period=0.0)


class TestRunnerEndToEnd:
    def test_small_ring_elects_exactly_one_leader(self):
        result = run_election(4, a0=0.2, seed=1)
        assert result.elected
        assert result.leaders_elected == 1
        assert 0 <= result.leader_uid < 4
        assert result.hop_overflows == 0
        assert result.messages_total >= 4  # at least one full traversal

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds_all_elect_single_leader(self, seed):
        result = run_election(8, a0=recommended_a0(8), seed=seed)
        assert result.elected
        assert result.leaders_elected == 1

    def test_reproducible_given_seed(self):
        a = run_election(8, a0=0.05, seed=13)
        b = run_election(8, a0=0.05, seed=13)
        assert (a.leader_uid, a.messages_total, a.election_time) == (
            b.leader_uid,
            b.messages_total,
            b.election_time,
        )

    def test_different_seeds_differ(self):
        outcomes = {
            run_election(8, a0=0.05, seed=seed).election_time for seed in range(6)
        }
        assert len(outcomes) > 1

    def test_verification_passes_on_real_runs(self):
        network, status = build_election_network(10, a0=recommended_a0(10), seed=5)
        result = run_election_on_network(network, status)
        report = verify_election(network, result)
        assert report.ok
        assert report.checks_performed >= 8

    def test_works_with_fifo_channels_too(self):
        result = run_election(6, a0=0.1, seed=3, fifo=True)
        assert result.elected

    def test_works_with_processing_delay(self):
        result = run_election(
            6, a0=0.1, seed=3, processing_delay=ConstantDelay(0.05)
        )
        assert result.elected

    def test_works_under_clock_drift(self):
        result = run_election(6, a0=0.1, seed=3, clock_bounds=(0.5, 2.0))
        assert result.elected
        assert result.leaders_elected == 1

    def test_ring_size_validation(self):
        with pytest.raises(ValueError):
            run_election(1)

    def test_model_validation_rejects_wrong_delta(self):
        from repro.models.base import ModelValidationError

        with pytest.raises(ModelValidationError):
            run_election(
                4, a0=0.2, delay=ExponentialDelay(2.0), expected_delay_bound=1.0, seed=0
            )

    def test_model_validation_can_be_disabled(self):
        result = run_election(
            4,
            a0=0.2,
            delay=ExponentialDelay(2.0),
            expected_delay_bound=1.0,
            validate_model=False,
            seed=0,
        )
        assert result.elected

    def test_requires_ring_topology(self):
        status = ElectionStatus()
        config = NetworkConfig(
            topology=line_topology(4), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(config, lambda uid: AbeElectionProgram(status))
        with pytest.raises(RuntimeError, match="unidirectional rings"):
            network.run(max_events=10)

    def test_requires_known_ring_size(self):
        status = ElectionStatus()
        config = NetworkConfig(
            topology=unidirectional_ring(4),
            delay_model=ConstantDelay(1.0),
            seed=0,
            size_known=False,
        )
        network = Network(config, lambda uid: AbeElectionProgram(status))
        with pytest.raises(RuntimeError, match="size n"):
            network.run(max_events=10)

    def test_result_convenience_properties(self):
        result = run_election(8, a0=0.05, seed=2)
        assert result.messages_per_node == pytest.approx(result.messages_total / 8)
        assert result.time_per_node == pytest.approx(result.election_time / 8)

    def test_max_events_budget_reports_non_termination(self):
        # An absurdly small budget: the run stops before anyone wins.
        result = run_election(16, a0=1e-6, seed=0, max_events=10)
        assert not result.elected
        assert result.leader_uid is None


class TestVerificationChecker:
    def test_detects_fabricated_second_leader(self):
        network, status = build_election_network(6, a0=0.1, seed=4)
        result = run_election_on_network(network, status)
        # Corrupt the final state: promote another node to leader.
        for program in network.programs():
            if program.state is not NodeState.LEADER:
                program.state = NodeState.LEADER
                break
        with pytest.raises(ElectionInvariantError):
            verify_election(network, result)

    def test_detects_missing_leader_when_required(self):
        network, status = build_election_network(6, a0=0.1, seed=4)
        # Never run the network: nobody is leader.
        report = verify_election(network, None, require_elected=True, strict=False)
        assert not report.ok

    def test_missing_leader_tolerated_when_not_required(self):
        network, status = build_election_network(6, a0=0.1, seed=4)
        report = verify_election(network, None, require_elected=False, strict=False)
        assert report.ok

    def test_wrong_program_type_is_flagged(self):
        from repro.algorithms.traversal import RingTraversalProgram

        config = NetworkConfig(
            topology=unidirectional_ring(4), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(config, lambda uid: RingTraversalProgram(is_initiator=(uid == 0)))
        report = verify_election(network, None, strict=False)
        assert not report.ok
