"""Unit tests for channels, nodes, node programs and message envelopes."""

from __future__ import annotations

from typing import Any, List

import pytest

from repro.network.channel import Channel, FifoChannel
from repro.network.delays import ConstantDelay, ExponentialDelay, UniformDelay
from repro.network.messages import Envelope
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import Topology, line_topology, unidirectional_ring


class RecordingProgram(NodeProgram):
    """Test program that records everything it receives."""

    def __init__(self) -> None:
        super().__init__()
        self.received: List[tuple] = []

    def on_receive(self, payload: Any, port: int) -> None:
        self.received.append((self.now, payload, port))


class SenderProgram(RecordingProgram):
    """Sends a burst of messages on port 0 at start-up."""

    def __init__(self, burst: int = 3) -> None:
        super().__init__()
        self.burst = burst

    def on_start(self) -> None:
        for index in range(self.burst):
            self.send(0, f"msg-{index}")


def two_node_network(delay, fifo=False, seed=0):
    topology = Topology(n=2, edges=[(0, 1)], name="pair")
    config = NetworkConfig(topology=topology, delay_model=delay, seed=seed, fifo=fifo)
    programs = {}

    def factory(uid):
        program = SenderProgram() if uid == 0 else RecordingProgram()
        programs[uid] = program
        return program

    return Network(config, factory), programs


class TestChannelDelivery:
    def test_messages_arrive_after_sampled_delay(self):
        network, programs = two_node_network(ConstantDelay(2.0))
        network.run()
        times = [t for (t, _, _) in programs[1].received]
        assert times == [2.0, 2.0, 2.0]
        assert network.messages_sent() == 3
        assert network.messages_delivered() == 3

    def test_payloads_arrive_intact(self):
        network, programs = two_node_network(ConstantDelay(1.0))
        network.run()
        assert [p for (_, p, _) in programs[1].received] == ["msg-0", "msg-1", "msg-2"]

    def test_non_fifo_channel_may_reorder(self):
        # With a widely spread delay, 3 simultaneous sends frequently reorder.
        reordered = False
        for seed in range(20):
            network, programs = two_node_network(UniformDelay(0.0, 10.0), seed=seed)
            network.run()
            payloads = [p for (_, p, _) in programs[1].received]
            if payloads != ["msg-0", "msg-1", "msg-2"]:
                reordered = True
                break
        assert reordered, "expected at least one seed to reorder on a non-FIFO channel"

    def test_fifo_channel_preserves_order_for_every_seed(self):
        for seed in range(20):
            network, programs = two_node_network(
                UniformDelay(0.0, 10.0), fifo=True, seed=seed
            )
            network.run()
            payloads = [p for (_, p, _) in programs[1].received]
            assert payloads == ["msg-0", "msg-1", "msg-2"]

    def test_channel_statistics(self):
        network, _ = two_node_network(ConstantDelay(1.5))
        network.run()
        channel = network.channels[0]
        assert channel.messages_sent == 3
        assert channel.messages_delivered == 3
        assert channel.mean_observed_delay() == pytest.approx(1.5)
        assert channel.max_observed_delay == pytest.approx(1.5)

    def test_processing_delay_postpones_handler(self):
        topology = Topology(n=2, edges=[(0, 1)])
        config = NetworkConfig(
            topology=topology,
            delay_model=ConstantDelay(1.0),
            processing_delay=ConstantDelay(0.5),
            seed=0,
        )
        programs = {}

        def factory(uid):
            program = SenderProgram(burst=1) if uid == 0 else RecordingProgram()
            programs[uid] = program
            return program

        network = Network(config, factory)
        network.run()
        assert programs[1].received[0][0] == pytest.approx(1.5)

    def test_invalid_delay_model_type_rejected_on_send(self):
        topology = Topology(n=2, edges=[(0, 1)])
        config = NetworkConfig(topology=topology, delay_model=ConstantDelay(1.0), seed=0)
        network = Network(config, lambda uid: SenderProgram(burst=1) if uid == 0 else RecordingProgram())
        network.channels[0].delay_model = object()  # sabotage
        with pytest.raises(TypeError):
            network.run()


class TestNodeAndProgramApi:
    def test_send_on_invalid_port_raises(self):
        network, programs = two_node_network(ConstantDelay(1.0))
        with pytest.raises(ValueError):
            programs[0].send(5, "x")

    def test_unbound_program_raises_clear_error(self):
        program = RecordingProgram()
        with pytest.raises(RuntimeError):
            _ = program.rng

    def test_neighbor_helpers(self):
        config = NetworkConfig(
            topology=line_topology(3), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(config, lambda uid: RecordingProgram())
        middle = network.nodes[1].program
        assert set(middle.out_neighbors()) == {0, 2}
        assert middle.port_to(0) != middle.port_to(2)
        assert middle.out_neighbor(middle.port_to(2)) == 2
        with pytest.raises(ValueError):
            middle.port_to(99)
        with pytest.raises(ValueError):
            middle.out_neighbor(99)
        with pytest.raises(ValueError):
            middle.in_neighbor(99)

    def test_knowledge_items_and_size(self):
        config = NetworkConfig(
            topology=unidirectional_ring(4),
            delay_model=ConstantDelay(1.0),
            seed=0,
            size_known=True,
            knowledge_factory=lambda uid: {"id": uid * 10},
        )
        network = Network(config, lambda uid: RecordingProgram())
        program = network.nodes[2].program
        assert program.n == 4
        assert program.knowledge_item("id") == 20
        assert program.knowledge_item("missing", "default") == "default"

    def test_size_unknown_when_configured(self):
        config = NetworkConfig(
            topology=unidirectional_ring(4),
            delay_model=ConstantDelay(1.0),
            seed=0,
            size_known=False,
        )
        network = Network(config, lambda uid: RecordingProgram())
        assert network.nodes[0].program.n is None

    def test_set_timer_uses_local_time(self):
        fired = []

        class TimerProgram(NodeProgram):
            def on_start(self) -> None:
                self.set_timer(3.0, lambda: fired.append(self.now))

        config = NetworkConfig(
            topology=unidirectional_ring(2), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(config, lambda uid: TimerProgram())
        network.run()
        assert fired == [3.0, 3.0]

    def test_trace_records_subject_uid(self):
        class TracingProgram(NodeProgram):
            def on_start(self) -> None:
                self.trace("hello", value=1)

        config = NetworkConfig(
            topology=unidirectional_ring(2), delay_model=ConstantDelay(1.0), seed=0
        )
        network = Network(config, lambda uid: TracingProgram())
        network.run()
        assert {e.subject for e in network.tracer.filter(category="hello")} == {0, 1}


class TestEnvelope:
    def test_in_flight_time(self):
        envelope = Envelope(
            payload="x", source=0, destination=1, channel_id=0, send_time=1.0, delay=2.0,
            deliver_time=3.5,
        )
        assert envelope.in_flight_time == pytest.approx(2.5)

    def test_in_flight_time_none_before_delivery(self):
        envelope = Envelope(
            payload="x", source=0, destination=1, channel_id=0, send_time=1.0, delay=2.0
        )
        assert envelope.in_flight_time is None

    def test_envelope_ids_are_unique(self):
        a = Envelope(payload=1, source=0, destination=1, channel_id=0, send_time=0, delay=0)
        b = Envelope(payload=2, source=0, destination=1, channel_id=0, send_time=0, delay=0)
        assert a.envelope_id != b.envelope_id
