"""Property-based correctness of the churn-aware election.

Hypothesis generates bounded, eventually-quiescent :class:`FaultScript`\\ s --
fixed-node and leader-targeted crash/recover cycles, link outages, periodic
churn -- and asserts the stabilization contract: once the script has run dry
the election terminates with exactly one live leader among the alive nodes,
and the whole run is a pure function of the seed (serial repeat and the
parallel trial path are bit-identical).

``derandomize`` keeps CI stable: a fixed example sweep rather than a fresh
random batch per run.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.churn_election import run_churn_election
from repro.network.churn import (
    CrashEvent,
    FaultScript,
    LinkDownEvent,
    PeriodicChurn,
)
from repro.scenarios.runtime import run_scenario
from repro.scenarios.spec import ScenarioSpec, SpecNode

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

N = 6  # all generated scripts target a fixed small ring

times = st.floats(min_value=0.0, max_value=120.0, allow_nan=False, allow_infinity=False)
downtimes = st.floats(min_value=1.0, max_value=60.0, allow_nan=False, allow_infinity=False)

fixed_crashes = st.builds(
    CrashEvent,
    node=st.integers(min_value=0, max_value=N - 1),
    time=times,
    downtime=downtimes,
)
leader_crashes = st.builds(
    CrashEvent, node=st.just("leader"), time=times, downtime=downtimes
)
link_downs = st.builds(
    LinkDownEvent,
    channel=st.integers(min_value=0, max_value=N - 1),
    time=times,
    duration=downtimes,
)
periodic = st.builds(
    PeriodicChurn,
    interval=st.floats(min_value=20.0, max_value=80.0),
    count=st.integers(min_value=0, max_value=2),
    downtime=downtimes,
    start=times,
    target=st.sampled_from(["any", "leader"]),
)

scripts = st.builds(
    FaultScript,
    events=st.lists(
        st.one_of(fixed_crashes, leader_crashes, link_downs, periodic),
        max_size=4,
    ).map(tuple),
)


@given(script=scripts, seed=st.integers(min_value=0, max_value=2**16))
@SETTINGS
def test_quiescent_scripts_stabilize_deterministically(script, seed):
    assert script.eventually_quiescent  # every generated disruption reverses
    result = run_churn_election(
        N, script=script, seed=seed, max_time=20_000.0, max_events=400_000
    )
    # Termination with a unique live leader among the (recovered) alive nodes.
    assert result.stabilized
    assert result.elected
    assert result.leader_uid is not None
    assert 0 <= result.leader_uid < N
    assert result.recoveries == result.crashes  # quiescence realized
    # Purity: the identical call reproduces the identical result object.
    assert result == run_churn_election(
        N, script=script, seed=seed, max_time=20_000.0, max_events=400_000
    )


periodic_params = st.fixed_dictionaries(
    {
        "interval": st.floats(min_value=30.0, max_value=90.0),
        "count": st.integers(min_value=1, max_value=2),
        "downtime": st.floats(min_value=10.0, max_value=40.0),
        "start": st.floats(min_value=0.0, max_value=30.0),
        "target": st.sampled_from(["any", "leader"]),
    }
)


@given(params=periodic_params, seed=st.integers(min_value=0, max_value=2**10))
@settings(
    max_examples=4,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_parallel_trial_path_is_bit_identical(params, seed):
    # The declarative path: the same churn spec through the serial runner and
    # through ParallelTrialRunner workers must agree result-for-result.
    spec = ScenarioSpec(
        algorithm="abe-election",
        topology=SpecNode("uniring", {"n": N}),
        seed=seed,
        trials=3,
        label="churn-property",
        churn=SpecNode("periodic", dict(params)),
    )
    serial = run_scenario(spec)
    parallel = run_scenario(spec, workers=2)
    assert serial == parallel
    assert all(r.stabilized for r in serial)
