"""The study service: submission, dedupe, warm-store re-runs, serve CLI.

The service's contract is "zero redundant compute": a study re-submitted in
the same process is deduplicated by study fingerprint, and a study re-run
against a warm :class:`~repro.store.ResultStore` -- new process, new service
-- satisfies every trial from the store and exports a ``points`` block that
is byte-identical to the cold run's.  The CLI tests drive ``abe-repro
serve`` end to end through :func:`repro.cli.main`, twice against the same
store, and assert exactly that.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.scenarios import ScenarioSpec
from repro.scenarios.spec import StudySpec
from repro.store import ResultStore
from repro.store.service import StudyService, study_from_spec


def small_study(trials: int = 2, seed: int = 5, name: str = "svc") -> StudySpec:
    points = tuple(
        ScenarioSpec(
            algorithm="abe-election",
            topology={"kind": "uniring", "params": {"n": n}},
            trials=trials,
            seed=seed,
            label=f"n{n}",
        )
        for n in (4, 5)
    )
    return StudySpec(name=name, points=points)


from repro.network.delays import ExponentialDelay


class AddressDelay(ExponentialDelay):
    """A runnable delay model whose repr carries a memory address, so the
    spec refuses a fingerprint and the job runs anonymously, unjournaled."""

    __repr__ = object.__repr__


class TestStudyFromSpec:
    def test_scenario_lifts_to_one_point_study(self):
        spec = ScenarioSpec(algorithm="abe-election", label="solo")
        study = study_from_spec(spec)
        assert isinstance(study, StudySpec)
        assert study.name == "solo"
        assert study.points == (spec,)
        assert study_from_spec(study) is study

    def test_other_objects_are_rejected(self):
        with pytest.raises(TypeError):
            study_from_spec({"algorithm": "abe-election"})


class TestStudyService:
    def test_submit_run_export(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite") as store:
            with StudyService(store) as service:
                job_id, disposition = service.submit(small_study(), source="test")
                assert disposition == "queued"
                reports = service.run_pending()
            assert [r.job_id for r in reports] == [job_id]
            report = reports[0]
            assert report.status == "completed"
            assert report.trials_executed == 4  # 2 points x 2 trials
            assert report.hits == 0 and report.lookups == 4
            assert len(store) == 4  # every trial landed in the store
            path = service.export(report, tmp_path / "out")
            assert os.path.basename(path) == f"{job_id}.json"
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            assert doc["cache"] == {
                "lookups": 4,
                "hits": 0,
                "misses": 4,
                "hit_rate": 0.0,
                "trials_executed": 4,
            }
            assert [point["label"] for point in doc["points"]] == ["n4", "n5"]
            summary = doc["points"][0]["summary"]
            assert summary["trials"] == 2 and summary["failures"] == 0
            assert "elected" not in summary["metrics"].get("seed", {})

    def test_in_process_duplicates_are_not_re_executed(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite") as store:
            with StudyService(store) as service:
                job_id, first = service.submit(small_study())
                _, coalesced = service.submit(small_study())  # still queued
                assert (first, coalesced) == ("queued", "duplicate")
                reports = service.run_pending()
                assert len(reports) == 1  # coalesced, not run twice
                # Re-submitting after completion serves the cached report.
                dup_id, disposition = service.submit(small_study())
                assert (dup_id, disposition) == (job_id, "duplicate")
                (dup,) = service.run_pending()
                assert dup.status == "duplicate"
                assert dup.duplicate_of == job_id
                assert dup.points is reports[0].points  # original results reused

    def test_warm_store_run_is_pure_cache(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store, StudyService(store) as service:
            service.submit(small_study())
            (cold,) = service.run_pending()
        # A new process: new store handle, new service, same sqlite file.
        with ResultStore(path) as store, StudyService(store) as service:
            service.submit(small_study())
            (warm,) = service.run_pending()
        assert warm.trials_executed == 0  # zero trial compute
        assert warm.hits == warm.lookups == 4
        cold_points = json.dumps([p.identity_dict() for p in cold.points], sort_keys=True)
        warm_points = json.dumps([p.identity_dict() for p in warm.points], sort_keys=True)
        assert cold_points == warm_points  # byte-identical aggregates

    def test_unfingerprintable_spec_runs_anonymously_unjournaled(self, tmp_path):
        spec = ScenarioSpec(
            algorithm="abe-election",
            topology={"kind": "uniring", "params": {"n": 4}},
            trials=2,
            params={"delay": AddressDelay(mean=1.0)},
        )
        with ResultStore(tmp_path / "store.sqlite") as store:
            with StudyService(store) as service:
                job_id, disposition = service.submit(spec)
                assert (job_id, disposition) == ("anon-1", "queued")
                (report,) = service.run_pending()
            assert report.fingerprint is None
            assert report.points[0].fingerprint is None
            assert report.lookups == 0  # the store was never consulted
            assert report.trials_executed == 2  # everything returned was computed
            assert len(store) == 0  # nothing cached under a per-process key


class TestServeCLI:
    def _write_spec(self, path, **kwargs):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(small_study(**kwargs).to_dict(), handle)

    def test_serve_twice_warm_run_is_byte_identical(self, tmp_path, capsys):
        spec_path = tmp_path / "study.json"
        self._write_spec(spec_path)
        store = tmp_path / "store.sqlite"

        def serve(export):
            code = main(
                ["serve", str(spec_path), "--store", str(store), "--export", str(export)]
            )
            assert code == 0
            captured = capsys.readouterr()
            (export_file,) = [
                name for name in os.listdir(export) if name.endswith(".json")
            ]
            with open(os.path.join(str(export), export_file), "r", encoding="utf-8") as handle:
                return json.load(handle), captured

        cold, cold_io = serve(tmp_path / "cold")
        warm, warm_io = serve(tmp_path / "warm")
        assert cold["cache"]["misses"] == 4 and cold["cache"]["trials_executed"] == 4
        assert warm["cache"]["misses"] == 0 and warm["cache"]["trials_executed"] == 0
        assert warm["cache"]["hits"] == 4
        # The deterministic block survives the cold->warm transition byte
        # for byte; cache/timing live outside it.
        assert json.dumps(cold["points"], sort_keys=True) == json.dumps(
            warm["points"], sort_keys=True
        )
        assert "cache: 4/4 hit(s), 0 trial(s) executed" in warm_io.out
        assert "exported:" in warm_io.out

    def test_serve_watch_once_processes_backlog(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        spool.mkdir()
        self._write_spec(spool / "job.json")
        (spool / "notes.txt").write_text("ignored: not a .json spec\n")
        code = main(
            [
                "serve",
                "--store",
                str(tmp_path / "store.sqlite"),
                "--watch",
                str(spool),
                "--once",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "job " in out and "[completed]" in out

    def test_serve_requires_jobs_or_watch(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--store", str(tmp_path / "store.sqlite")])

    def test_serve_reports_unreadable_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["serve", str(bad), "--store", str(tmp_path / "store.sqlite")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_migrate_cli_round_trip(self, tmp_path, capsys):
        from repro.experiments.resilience import CheckpointJournal

        journal = tmp_path / "journal.jsonl"
        CheckpointJournal(journal).record_many(
            "key", [(1, {"m": 1.0}), (2, {"m": 2.0})]
        )
        store = tmp_path / "store.sqlite"
        assert main(["migrate", str(journal), "--store", str(store)]) == 0
        assert "migrated 2 result(s)" in capsys.readouterr().out
        assert main(["migrate", str(journal), "--store", str(store)]) == 0
        assert "migrated 0 result(s) (2 already present" in capsys.readouterr().out
        with ResultStore(store) as reopened:
            assert len(reopened) == 2
