"""Tests for the Markdown / CSV export of experiment results."""

from __future__ import annotations

import csv
import io

from repro.experiments.export import (
    experiment_to_markdown,
    experiments_to_markdown,
    table_to_csv,
    table_to_markdown,
)
from repro.experiments.results import ExperimentResult, ResultTable


def sample_table() -> ResultTable:
    table = ResultTable(title="demo table", columns=["n", "cost", "ok"])
    table.add_row(n=8, cost=12.5, ok=True)
    table.add_row(n=16, cost=25.0, ok=False)
    table.add_note("a note")
    return table


def sample_experiment() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="e9",
        title="demo experiment",
        claim="demo claim",
        tables=[sample_table()],
        findings={"works": True, "ratio": 2.0},
        parameters={"trials": 3},
    )


class TestMarkdownExport:
    def test_table_markdown_structure(self):
        text = table_to_markdown(sample_table())
        lines = text.splitlines()
        assert lines[0] == "**demo table**"
        assert lines[2] == "| n | cost | ok |"
        assert lines[3] == "| --- | --- | --- |"
        assert "| 8 | 12.5 | yes |" in lines
        assert "| 16 | 25 | no |" in lines
        assert any("a note" in line for line in lines)

    def test_experiment_markdown_contains_claim_findings_parameters(self):
        text = experiment_to_markdown(sample_experiment())
        assert "### E9 -- demo experiment" in text
        assert "*Claim:* demo claim" in text
        assert "- `works`: yes" in text
        assert "trials=3" in text

    def test_multiple_experiments_concatenated(self):
        text = experiments_to_markdown([sample_experiment(), sample_experiment()])
        assert text.count("### E9") == 2

    def test_real_experiment_renders(self):
        from repro.experiments import e4_retransmission

        result = e4_retransmission.run(probabilities=(0.5,), messages=500, base_seed=1)
        text = experiment_to_markdown(result)
        assert "E4" in text
        assert "| p |" in text or "| p " in text


class TestCsvExport:
    def test_round_trips_through_csv_reader(self):
        text = table_to_csv(sample_table())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["n", "cost", "ok"]
        assert rows[1] == ["8", "12.5", "True"]
        assert len(rows) == 3

    def test_missing_cells_become_empty_strings(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1)
        rows = list(csv.reader(io.StringIO(table_to_csv(table))))
        assert rows[1] == ["1", ""]
