"""Determinism and behaviour of the parallel Monte-Carlo trial runner.

The seed-derivation contract says trial ``i`` of base seed ``s`` always runs
with ``derive_seed(s, "trial{i}")`` and each trial is a pure function of that
seed.  These tests pin the two consequences the experiments rely on:

* serial and parallel execution produce bit-identical result lists for any
  worker count, and
* results are reproducible across separate Python processes (``derive_seed``
  is hash-salt independent).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.experiments.parallel import (
    ParallelTrialRunner,
    default_worker_count,
    fork_available,
    parallel_map,
)
from repro.experiments.runner import mean_of_attribute, monte_carlo
from repro.experiments.workloads import election_trials


class TestParallelTrialRunner:
    def test_map_preserves_order(self):
        runner = ParallelTrialRunner(workers=4)
        assert runner.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    def test_map_with_one_worker_is_serial(self):
        runner = ParallelTrialRunner(workers=1)
        assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_workers_none_uses_cpu_count(self):
        runner = ParallelTrialRunner(workers=None)
        assert runner.workers == default_worker_count()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelTrialRunner(workers=0)
        with pytest.raises(ValueError):
            ParallelTrialRunner(workers=4, chunk_size=0)

    def test_closures_cross_the_fork_boundary(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        captured = {"offset": 100}
        runner = ParallelTrialRunner(workers=2)
        assert runner.map(lambda x: x + captured["offset"], [1, 2, 3]) == [101, 102, 103]

    def test_parallel_map_convenience(self):
        assert parallel_map(str, [1, 2], workers=2) == ["1", "2"]

    def test_monte_carlo_method_matches_function(self):
        runner = ParallelTrialRunner(workers=2)
        via_method = runner.monte_carlo(lambda seed: seed % 5, trials=10, base_seed=3)
        via_function = monte_carlo(lambda seed: seed % 5, trials=10, base_seed=3)
        assert via_method == via_function


class TestMonteCarloWorkers:
    def test_keep_filter_applied_after_parallel_gather(self):
        serial = monte_carlo(
            lambda seed: seed % 3, trials=12, base_seed=1, keep=lambda v: v == 0
        )
        parallel = monte_carlo(
            lambda seed: seed % 3,
            trials=12,
            base_seed=1,
            keep=lambda v: v == 0,
            workers=3,
        )
        assert serial == parallel
        assert all(value == 0 for value in parallel)

    def test_keep_can_drop_everything(self):
        assert (
            monte_carlo(lambda seed: seed, trials=4, base_seed=1, keep=lambda v: False)
            == []
        )

    def test_workers_do_not_change_results(self):
        serial = monte_carlo(lambda seed: (seed * 7) % 101, trials=16, base_seed=9)
        fanned = monte_carlo(
            lambda seed: (seed * 7) % 101, trials=16, base_seed=9, workers=4
        )
        assert serial == fanned


class TestMeanOfAttribute:
    class _Point:
        def __init__(self, value):
            self.value = value

    def test_empty_results_raise(self):
        with pytest.raises(ValueError):
            mean_of_attribute([], "value")

    def test_all_none_values_raise(self):
        with pytest.raises(ValueError):
            mean_of_attribute([self._Point(None), self._Point(None)], "value")

    def test_none_values_excluded_from_mean(self):
        points = [self._Point(2.0), self._Point(None), self._Point(4.0)]
        assert mean_of_attribute(points, "value") == 3.0


class TestElectionDeterminism:
    """The acceptance-critical regression tests for the seed contract."""

    def test_serial_and_parallel_election_results_bit_identical(self):
        serial = election_trials(8, trials=6, base_seed=13)
        parallel = election_trials(8, trials=6, base_seed=13, workers=4)
        # ElectionResult is a dataclass of primitives: == is field-wise.
        assert serial == parallel

    def test_experiment_findings_identical_across_worker_counts(self):
        from repro.experiments import e1_message_complexity

        serial = e1_message_complexity.run(sizes=(8, 16), trials=3, base_seed=11)
        fanned = e1_message_complexity.run(sizes=(8, 16), trials=3, base_seed=11, workers=3)
        assert serial.findings == fanned.findings
        assert [dict(row) for row in serial.table()] == [
            dict(row) for row in fanned.table()
        ]

    def test_election_counters_bit_identical_serial_vs_workers(self):
        """The plain-integer election counters (ticks, activations, knockouts,
        hop overflows) survive the fork boundary bit-identically: a worker
        process increments its own status object and ships the counts back
        inside the result record."""
        serial = election_trials(10, trials=6, base_seed=17)
        fanned = election_trials(10, trials=6, base_seed=17, workers=4)
        for s, f in zip(serial, fanned):
            assert (s.ticks, s.activations, s.knockout_messages, s.hop_overflows) == (
                f.ticks,
                f.activations,
                f.knockout_messages,
                f.hop_overflows,
            )
        assert all(r.ticks > 0 and r.activations > 0 for r in fanned)

    def test_results_identical_across_processes(self):
        """Same seed => same results in a fresh interpreter (twice over)."""
        snippet = (
            "import json, sys\n"
            "from repro.experiments.workloads import election_trials\n"
            "results = election_trials(8, trials=3, base_seed=21, workers=2)\n"
            "payload = [[r.messages_total, r.election_time, r.leader_uid, r.seed,"
            " r.ticks, r.activations, r.knockout_messages]"
            " for r in results]\n"
            "print(json.dumps(payload))\n"
        )
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(src_root, "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        outputs = []
        for _ in range(2):
            completed = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env=env,
                check=True,
                timeout=300,
            )
            outputs.append(json.loads(completed.stdout))
        assert outputs[0] == outputs[1]
        in_process = election_trials(8, trials=3, base_seed=21)
        expected = [
            [
                r.messages_total,
                r.election_time,
                r.leader_uid,
                r.seed,
                r.ticks,
                r.activations,
                r.knockout_messages,
            ]
            for r in in_process
        ]
        assert outputs[0] == expected
