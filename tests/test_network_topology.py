"""Unit tests for topology builders."""

from __future__ import annotations

import pytest

from repro.network.topology import (
    Topology,
    bidirectional_ring,
    complete_graph,
    grid_topology,
    line_topology,
    random_connected,
    star_topology,
    tree_topology,
    unidirectional_ring,
)


class TestTopologyCore:
    def test_edge_validation(self):
        with pytest.raises(ValueError):
            Topology(n=2, edges=[(0, 2)])
        with pytest.raises(ValueError):
            Topology(n=2, edges=[(0, 0)])
        with pytest.raises(ValueError):
            Topology(n=0, edges=[])

    def test_successor_and_predecessor_maps(self):
        topo = Topology(n=3, edges=[(0, 1), (1, 2), (2, 0)])
        assert topo.successors(0) == [1]
        assert topo.predecessors(0) == [2]
        assert topo.out_degree(1) == 1
        assert topo.in_degree(1) == 1
        assert topo.edge_count == 3

    def test_to_networkx_roundtrip(self):
        topo = unidirectional_ring(5)
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 5


class TestRings:
    def test_unidirectional_ring_structure(self):
        topo = unidirectional_ring(6)
        assert topo.n == 6
        assert topo.edge_count == 6
        for node in range(6):
            assert topo.out_degree(node) == 1
            assert topo.in_degree(node) == 1
            assert topo.successors(node) == [(node + 1) % 6]
        assert topo.is_strongly_connected()

    def test_unidirectional_ring_minimum_size(self):
        with pytest.raises(ValueError):
            unidirectional_ring(1)

    def test_bidirectional_ring_structure(self):
        topo = bidirectional_ring(5)
        assert topo.edge_count == 10
        for node in range(5):
            assert set(topo.successors(node)) == {(node + 1) % 5, (node - 1) % 5}
        assert topo.is_strongly_connected()

    def test_bidirectional_ring_port_convention(self):
        # Franklin's algorithm relies on port 0 = clockwise, port 1 = counter.
        topo = bidirectional_ring(4)
        for node in range(4):
            assert topo.successors(node)[0] == (node + 1) % 4
            assert topo.successors(node)[1] == (node - 1) % 4


class TestOtherShapes:
    def test_line_topology(self):
        topo = line_topology(4)
        assert topo.edge_count == 6
        assert topo.out_degree(0) == 1
        assert topo.out_degree(1) == 2
        assert topo.is_strongly_connected()

    def test_star_topology(self):
        topo = star_topology(5, centre=0)
        assert topo.out_degree(0) == 4
        assert all(topo.out_degree(i) == 1 for i in range(1, 5))
        assert topo.is_strongly_connected()
        with pytest.raises(ValueError):
            star_topology(5, centre=9)

    def test_complete_graph(self):
        topo = complete_graph(4)
        assert topo.edge_count == 12
        assert all(topo.out_degree(i) == 3 for i in range(4))

    def test_tree_topology(self):
        topo = tree_topology(7, branching=2)
        assert topo.edge_count == 12  # 6 undirected links
        assert topo.is_strongly_connected()
        assert set(topo.successors(0)) == {1, 2}

    def test_grid_topology(self):
        topo = grid_topology(2, 3)
        assert topo.n == 6
        assert topo.is_strongly_connected()
        # Corner has 2 neighbours, middle edge nodes have 3.
        assert topo.out_degree(0) == 2
        assert topo.out_degree(1) == 3

    def test_torus_wraps(self):
        torus = grid_topology(3, 3, wrap=True)
        assert all(torus.out_degree(i) == 4 for i in range(9))

    def test_invalid_sizes(self):
        for builder in (line_topology, star_topology, complete_graph, tree_topology):
            with pytest.raises(ValueError):
                builder(1)
        with pytest.raises(ValueError):
            grid_topology(1, 1)


class TestRandomGraphs:
    def test_random_connected_is_connected_and_bidirectional(self):
        topo = random_connected(12, edge_probability=0.3, seed=5)
        assert topo.n == 12
        assert topo.is_strongly_connected()
        edge_set = set(topo.edges)
        assert all((v, u) in edge_set for (u, v) in edge_set)

    def test_random_connected_reproducible(self):
        a = random_connected(10, 0.3, seed=7)
        b = random_connected(10, 0.3, seed=7)
        assert a.edges == b.edges

    def test_random_connected_sparse_fallback_still_connected(self):
        topo = random_connected(10, edge_probability=0.01, seed=3)
        assert topo.is_strongly_connected()

    def test_random_connected_validation(self):
        with pytest.raises(ValueError):
            random_connected(1, 0.5, seed=0)
        with pytest.raises(ValueError):
            random_connected(5, 1.5, seed=0)
