"""Property-based tests (hypothesis) for the statistics toolkit."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.stats.complexity_fit import GROWTH_MODELS, best_growth_order, fit_growth_order
from repro.stats.confidence import confidence_interval
from repro.stats.distributions import ecdf, empirical_quantile, tail_mass
from repro.stats.estimators import mean, sample_variance, summarise
from repro.stats.sequences import RunningStats

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, min_size=1, max_size=200)
nonempty_positive = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


@given(data=samples)
@settings(max_examples=200, deadline=None)
def test_mean_lies_between_min_and_max(data):
    m = mean(data)
    assert min(data) - 1e-9 <= m <= max(data) + 1e-9


@given(data=samples)
@settings(max_examples=200, deadline=None)
def test_variance_is_nonnegative_and_zero_for_constant_samples(data):
    assert sample_variance(data) >= 0.0
    constant = [data[0]] * len(data)
    assert sample_variance(constant) <= 1e-6 * max(1.0, data[0] * data[0])


@given(data=samples)
@settings(max_examples=200, deadline=None)
def test_running_stats_agree_with_batch(data):
    running = RunningStats()
    for value in data:
        running.add(value)
    assert math.isclose(running.mean, mean(data), rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(
        running.variance, sample_variance(data), rel_tol=1e-6, abs_tol=1e-6
    )
    assert running.minimum == min(data)
    assert running.maximum == max(data)


@given(data=st.lists(finite_floats, min_size=2, max_size=100))
@settings(max_examples=200, deadline=None)
def test_confidence_interval_brackets_the_estimate(data):
    interval = confidence_interval(data)
    assert interval.lower <= interval.estimate <= interval.upper
    assert interval.contains(interval.estimate)
    summary = summarise(data)
    assert math.isclose(interval.estimate, summary.mean, rel_tol=1e-12, abs_tol=1e-9)


@given(data=nonempty_positive, threshold=st.floats(min_value=0.0, max_value=1e6))
@settings(max_examples=200, deadline=None)
def test_tail_mass_is_a_probability_and_monotone(data, threshold):
    value = tail_mass(data, threshold)
    assert 0.0 <= value <= 1.0
    # Raising the threshold can only shrink the tail.
    assert tail_mass(data, threshold + 1.0) <= value + 1e-12


@given(data=nonempty_positive)
@settings(max_examples=200, deadline=None)
def test_ecdf_is_monotone_and_reaches_one(data):
    points = ecdf(data)
    probabilities = [p for _, p in points]
    values = [v for v, _ in points]
    assert values == sorted(values)
    assert all(b >= a for a, b in zip(probabilities, probabilities[1:]))
    assert math.isclose(probabilities[-1], 1.0)


@given(data=nonempty_positive, q=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_quantiles_are_order_statistics(data, q):
    value = empirical_quantile(data, q)
    assert value in data
    assert empirical_quantile(data, 0.0) == min(data)
    assert empirical_quantile(data, 1.0) == max(data)


@given(
    coefficient=st.floats(min_value=0.01, max_value=100.0),
    model=st.sampled_from(["n", "n log n", "n^2"]),
    noise=st.floats(min_value=0.0, max_value=0.05),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_growth_fit_recovers_generating_model(coefficient, model, noise, seed):
    import random

    rng = random.Random(seed)
    sizes = [8, 16, 32, 64, 128, 256]
    costs = [
        coefficient * GROWTH_MODELS[model](n) * (1.0 + rng.uniform(-noise, noise))
        for n in sizes
    ]
    fits = best_growth_order(sizes, costs)
    assert next(iter(fits)) == model
    direct = fit_growth_order(sizes, costs, model)
    assert math.isclose(direct.coefficient, coefficient, rel_tol=max(0.2, 3 * noise))
