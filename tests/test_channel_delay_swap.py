"""Regression tests: swapping a channel's delay model mid-run is stale-free.

Satellite audit of ``Channel.set_delay_model``: a block sampler prefetches
delays ahead of use, so the dangerous failure mode of a mid-run delay-model
swap is *serving a draw sampled from the previous distribution*.  On a FIFO +
batch-sampling channel that bug would be doubly invisible -- the FIFO clamp
already reorders delivery times, masking a stale delay.  These tests pin the
contract:

* after a swap, every served delay comes from the new distribution (no stale
  prefetched draws, however many were left in the block);
* a batch-configured channel stays batch-configured (fresh sampler, same
  block size) instead of silently degrading to per-message sampling;
* the FIFO no-overtaking clamp survives the swap (delivery order is
  per-channel history, not per-model state);
* the whole procedure is deterministic per seed.
"""

from __future__ import annotations

from typing import Any, List

from repro.network.delays import ConstantDelay, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import Topology


class _Sink(NodeProgram):
    def __init__(self, received: List[Any]) -> None:
        super().__init__()
        self._received = received

    def on_receive(self, payload: Any, port: int) -> None:
        self._received.append((self.now, payload))


def _pair_network(seed: int = 3, fifo: bool = True, batch_sampling: bool = True):
    received: List[Any] = []
    config = NetworkConfig(
        topology=Topology(n=2, edges=[(0, 1)], name="pair"),
        delay_model=ExponentialDelay(mean=1.0),
        seed=seed,
        fifo=fifo,
        batch_sampling=batch_sampling,
        enable_trace=False,
    )
    network = Network(config, lambda uid: _Sink(received))
    return network, network.channels[0], received


class TestMidRunDelayModelSwap:
    def test_no_stale_draws_after_swap_on_fifo_batch_channel(self):
        network, channel, received = _pair_network()
        # Burn a few draws so the prefetched block is partially consumed and
        # provably has exponential draws left.
        pre_swap = [channel.transmit(f"pre-{i}").delay for i in range(4)]
        assert any(delay != 2.5 for delay in pre_swap)

        def swap() -> None:
            channel.set_delay_model(ConstantDelay(2.5))

        network.simulator.schedule(1.0, swap)

        post_swap_delays: List[float] = []

        def send_after_swap() -> None:
            for i in range(8):
                post_swap_delays.append(channel.transmit(f"post-{i}").delay)

        network.simulator.schedule(2.0, send_after_swap)
        network.run()
        # Every single delay served after the swap is the new constant: no
        # leftover exponential draw from the old block escapes.
        assert post_swap_delays == [2.5] * 8
        assert len(received) == 12

    def test_batch_configured_channel_keeps_a_fresh_sampler(self):
        _, channel, _ = _pair_network()
        original = channel.delay_sampler
        assert original is not None
        channel.set_delay_model(ConstantDelay(2.5))
        rebuilt = channel.delay_sampler
        assert rebuilt is not None
        assert rebuilt is not original
        assert rebuilt.distribution is channel.delay_model
        assert rebuilt.block_size == original.block_size

    def test_swap_to_same_distribution_object_keeps_prefetched_draws(self):
        """Re-assigning the *same* distribution is a no-op: its prefetched
        draws are still valid, so the sampler (and its block) survive."""
        _, channel, _ = _pair_network()
        sampler = channel.delay_sampler
        channel.transmit("warm-up")  # force a refill
        block_state = (sampler._index, sampler._size)
        channel.set_delay_model(channel.delay_model)
        assert channel.delay_sampler is sampler
        assert (sampler._index, sampler._size) == block_state

    def test_fifo_clamp_survives_the_swap(self):
        """Messages sent after a swap to a much faster model must still not
        overtake slower pre-swap messages on a FIFO channel."""
        network, channel, received = _pair_network(seed=11)

        def swap_and_burst() -> None:
            channel.set_delay_model(ConstantDelay(0.001))
            for i in range(5):
                channel.transmit(f"fast-{i}")

        for i in range(5):
            channel.transmit(f"slow-{i}")
        network.simulator.schedule(0.5, swap_and_burst)
        network.run()
        payloads = [payload for _, payload in received]
        assert payloads == [f"slow-{i}" for i in range(5)] + [
            f"fast-{i}" for i in range(5)
        ]
        times = [time for time, _ in received]
        assert times == sorted(times)

    def test_swap_procedure_is_deterministic_per_seed(self):
        def run_once():
            network, channel, received = _pair_network(seed=7)
            for i in range(3):
                channel.transmit(f"pre-{i}")
            network.simulator.schedule(
                1.0, lambda: channel.set_delay_model(ExponentialDelay(mean=0.25))
            )
            network.simulator.schedule(
                2.0, lambda: [channel.transmit(f"post-{i}") for i in range(6)]
            )
            network.run()
            return received

        assert run_once() == run_once()

    def test_scalar_channel_swap_has_no_sampler_to_go_stale(self):
        network, channel, received = _pair_network(batch_sampling=False)
        assert channel.delay_sampler is None
        channel.set_delay_model(ConstantDelay(1.5))
        assert channel.delay_sampler is None
        envelope = channel.transmit("x")
        assert envelope.delay == 1.5
