"""Differential / golden test harness for the simulation stack.

EPSO-style lesson: an aggressive rewrite of a hot path is only trustworthy
when every run of the rewritten code is equivalence-checked against the
original.  This module provides the two halves of that check:

**Golden mode** -- a *scenario* (a named, deterministic simulation recipe)
is run and its *fingerprint* (results, metric counters, marks, message
counts, event counts and -- when tracing is on -- the full structured trace)
is compared bit-for-bit against a JSON snapshot.

Golden provenance
-----------------
The goldens were first generated at commit ``19a8dd0`` (PR 2), before the
election-core refactor.  PR 4 made ``batch_sampling``/``batch_ticks`` the
library defaults, which *by design* changes the default random stream /
event accounting, so the scenarios were migrated:

* ``election_scalar_n16`` and ``election_batched_n16`` now pin their
  historical modes explicitly (``batch_sampling``/``batch_ticks`` off, resp.
  sampling on / ticks off).  Their goldens are byte-identical to the PR 2
  recordings -- proof that the old streams themselves are untouched and the
  flip only changed which stream runs by default.
* every other scenario follows the library defaults and was re-recorded
  under them (PR 4); ``election_fast_defaults_n16`` and
  ``election_drift_n12`` pin the new default behaviour (including the
  drift-tolerant shared tick driver) explicitly.

Stream migration (vector core)
------------------------------
The columnar engine (``repro.core.vector_core``, PR 7) draws from its own
seed-deterministic numpy streams (``vector/coins``, ``vector/delays``,
``vector/processing``, ``vector/loss``) instead of replaying the object
core's per-node Python streams -- one uniform block per activation round is
the whole point of the vectorization, so event-for-event stream equality is
*not* a design goal.  The goldens therefore stay pinned to the object core
and are untouched; the vector core is checked against the object core
**distributionally** (means of messages / activations / knockouts /
election time over hundreds of trials, z-scored) and **invariantly**
(unique leader, agreement, exactly ``n - 1`` knockouts on the clean path)
in ``tests/test_vector_core.py`` and ``tests/test_property_vector_core.py``.

**Differential mode** -- two arbitrary callables (e.g. the live election
core and the faithful legacy replica in ``benchmarks/legacy_election_core.py``)
produce fingerprints that are compared field by field, with a readable diff
of every mismatching path.

Recording
---------
``python tests/harness/record_goldens.py [scenario ...]`` regenerates the
snapshots.  Re-record **only** when a behaviour change is intended, and say
so in the commit message -- a golden diff is the whole point of the harness.

Fingerprints are canonicalized before comparison: dataclasses become tagged
dicts, enums their string value, tuples become lists, unknown objects their
``repr``.  Floats are kept as floats -- JSON round-trips finite IEEE doubles
exactly, so equality of canonical forms is bit-identity of every simulated
time and metric.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Registry of named scenarios: name -> zero-argument callable returning a
#: fingerprint dict.  Populated by the ``@scenario`` decorator below.
SCENARIOS: Dict[str, Callable[[], Dict[str, Any]]] = {}

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: Dataclass fields excluded from fingerprints: process-global monotonic ids
#: (``itertools.count`` backed) that depend on everything simulated earlier in
#: the *process*, not on the run under test.  Including them would make
#: fingerprints order-dependent across a pytest session.
VOLATILE_ID_FIELDS = frozenset({"token_id", "envelope_id"})


def scenario(name: str) -> Callable[[Callable[[], Dict[str, Any]]], Callable[[], Dict[str, Any]]]:
    """Register a fingerprint-producing callable under ``name``."""

    def register(fn: Callable[[], Dict[str, Any]]) -> Callable[[], Dict[str, Any]]:
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario name {name!r}")
        SCENARIOS[name] = fn
        return fn

    return register


# --------------------------------------------------------------- canonical form


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-able canonical form preserving bit identity.

    Finite floats survive a JSON round-trip exactly; non-finite floats are
    tagged strings so they remain comparable.  Dataclasses are tagged with
    their class name, so a scenario cannot silently start returning a
    different result type.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {"__float__": repr(value)}
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in VOLATILE_ID_FIELDS
        }
        return {"__dataclass__": type(value).__name__, "fields": fields}
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, set):
        return {"__set__": sorted(repr(item) for item in value)}
    return {"__repr__": repr(value)}


def fingerprint_network(network: Any, *, include_trace: bool = False) -> Dict[str, Any]:
    """The observable end state of a :class:`~repro.network.network.Network`.

    Everything the experiments read is here: message totals, the full metric
    counter/mark snapshot, the engine's event accounting, the stop time, and
    (optionally) the structured trace.  Counters are read through
    ``metrics.counters()`` on purpose -- externally bound plain-integer
    counters and collector-owned ``Counter`` objects must be
    indistinguishable to readers, and this is where that contract is pinned.
    """
    fingerprint = {
        "now": network.now,
        "messages_sent": network.messages_sent(),
        "messages_delivered": network.messages_delivered(),
        "events_processed": network.simulator.events_processed,
        "events_scheduled": network.simulator.events_scheduled,
        "counters": canonical(dict(sorted(network.metrics.counters().items()))),
        "marks": canonical(dict(sorted(network.metrics.marks().items()))),
    }
    if include_trace:
        fingerprint["trace"] = [
            [event.time, event.category, canonical(event.subject), canonical(event.details)]
            for event in network.tracer
        ]
    return fingerprint


def fingerprint_experiment(result: Any) -> Dict[str, Any]:
    """Findings + every table row of an ``ExperimentResult``, canonicalized."""
    return {
        "experiment_id": result.experiment_id,
        "findings": canonical(result.findings),
        "tables": [
            {
                "title": table.title,
                "rows": [canonical(dict(row)) for row in table],
            }
            for table in result.tables
        ],
        "parameters": canonical(result.parameters),
    }


# ------------------------------------------------------------------ comparison


def _walk_diff(path: str, expected: Any, actual: Any, out: List[str]) -> None:
    if type(expected) is not type(actual):
        out.append(
            f"{path}: type {type(expected).__name__} != {type(actual).__name__} "
            f"({expected!r} vs {actual!r})"
        )
        return
    if isinstance(expected, dict):
        for key in expected.keys() | actual.keys():
            if key not in expected:
                out.append(f"{path}.{key}: unexpected key (value {actual[key]!r})")
            elif key not in actual:
                out.append(f"{path}.{key}: missing key (expected {expected[key]!r})")
            else:
                _walk_diff(f"{path}.{key}", expected[key], actual[key], out)
        return
    if isinstance(expected, list):
        if len(expected) != len(actual):
            out.append(f"{path}: length {len(expected)} != {len(actual)}")
        for index, (e_item, a_item) in enumerate(zip(expected, actual)):
            _walk_diff(f"{path}[{index}]", e_item, a_item, out)
        return
    if expected != actual:
        out.append(f"{path}: {expected!r} != {actual!r}")


def compare_fingerprints(
    expected: Dict[str, Any], actual: Dict[str, Any], *, limit: int = 25
) -> List[str]:
    """Paths at which two canonical fingerprints differ (empty = identical)."""
    expected = _json_round_trip(canonical(expected))
    actual = _json_round_trip(canonical(actual))
    diffs: List[str] = []
    _walk_diff("$", expected, actual, diffs)
    return diffs[:limit]


def _json_round_trip(value: Any) -> Any:
    # Goldens live as JSON on disk; pushing the live fingerprint through the
    # same serialization removes representational differences (e.g. tuples
    # already canonicalized to lists) without losing a single bit of any
    # finite float.
    return json.loads(json.dumps(value, sort_keys=True))


def assert_equivalent(
    expected: Dict[str, Any],
    actual: Dict[str, Any],
    *,
    context: str,
) -> None:
    """Assert two fingerprints are bit-identical, with a readable diff."""
    diffs = compare_fingerprints(expected, actual)
    if diffs:
        rendered = "\n  ".join(diffs)
        raise AssertionError(
            f"{context}: fingerprints diverge at {len(diffs)} path(s):\n  {rendered}"
        )


# --------------------------------------------------------------------- goldens


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def load_golden(name: str) -> Dict[str, Any]:
    path = golden_path(name)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden recorded for scenario {name!r}; run "
            f"`python tests/harness/record_goldens.py {name}`"
        )
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_golden(name: str, fingerprint: Dict[str, Any]) -> Path:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    path = golden_path(name)
    payload = {"scenario": name, "fingerprint": _json_round_trip(canonical(fingerprint))}
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def run_scenario(name: str) -> Dict[str, Any]:
    """Execute the registered scenario and return its live fingerprint."""
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}") from None
    return build()


def assert_matches_golden(name: str) -> None:
    """Run scenario ``name`` and assert bit-identity with its stored golden."""
    golden = load_golden(name)
    live = run_scenario(name)
    assert_equivalent(
        golden["fingerprint"],
        live,
        context=f"scenario {name!r} diverged from its pre-refactor golden",
    )


# -------------------------------------------------------------------- scenarios
#
# Every scenario is a pure function of constants: fixed sizes, seeds and
# delay models, bounded by max_events/max_time where liveness is not
# guaranteed (fault injection).  Coverage spans the election core in every
# configuration the refactor touches (scalar / batched / FIFO / traced /
# constant schedule / no-purge ablation / fault injection), all four baseline
# leader elections, all three synchronizers, and reduced E2/E3 experiment
# sweeps.


def _election_fingerprint(
    n: int,
    seed: int,
    *,
    include_trace: bool = False,
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    faults: Optional[Callable[[Any], Any]] = None,
    **config: Any,
) -> Dict[str, Any]:
    from repro.core.runner import build_election_network, run_election_on_network

    network, status = build_election_network(n, seed=seed, **config)
    if faults is not None:
        faults(network)
    result = run_election_on_network(
        network, status, max_events=max_events, max_time=max_time
    )
    fingerprint = fingerprint_network(network, include_trace=include_trace)
    fingerprint["result"] = canonical(result)
    return fingerprint


@scenario("election_scalar_n16")
def _election_scalar() -> Dict[str, Any]:
    # Pinned to the pre-fast-default modes: golden unchanged since PR 2.
    return _election_fingerprint(
        16, seed=7, a0=0.3, batch_sampling=False, batch_ticks=False
    )


@scenario("election_batched_n16")
def _election_batched() -> Dict[str, Any]:
    # Pinned to PR 2's batch-sampling mode (per-node ticks): golden unchanged.
    return _election_fingerprint(
        16, seed=11, a0=0.3, batch_sampling=True, batch_ticks=False
    )


@scenario("election_fast_defaults_n16")
def _election_fast_defaults() -> Dict[str, Any]:
    # The library defaults (batch sampling + batched ticks), pinned explicitly
    # so a future default flip cannot silently re-point this scenario.
    return _election_fingerprint(
        16, seed=11, a0=0.3, batch_sampling=True, batch_ticks=True
    )


@scenario("election_drift_n12")
def _election_drift() -> Dict[str, Any]:
    # Drifting clocks under the default batched ticks: locks the
    # drift-tolerant SharedTickProcess bucketing (the e8 workload shape).
    from repro.sim.clock import RandomWalkDrift

    return _election_fingerprint(
        12,
        seed=21,
        a0=0.3,
        clock_bounds=(0.5, 2.0),
        clock_drift_factory=lambda uid: RandomWalkDrift(initial_rate=1.25, step=0.15),
    )


@scenario("election_fifo_n12")
def _election_fifo() -> Dict[str, Any]:
    return _election_fingerprint(12, seed=5, a0=0.3, fifo=True)


@scenario("election_traced_n8")
def _election_traced() -> Dict[str, Any]:
    return _election_fingerprint(8, seed=3, a0=0.3, enable_trace=True, include_trace=True)


@scenario("election_constant_schedule_n10")
def _election_constant_schedule() -> Dict[str, Any]:
    from repro.core.activation import ConstantActivation

    return _election_fingerprint(10, seed=9, schedule=ConstantActivation(0.2))


@scenario("election_no_purge_n8")
def _election_no_purge() -> Dict[str, Any]:
    return _election_fingerprint(8, seed=2, a0=0.3, purge_at_active=False, max_events=60_000)


@scenario("election_uniform_delay_n12")
def _election_uniform_delay() -> Dict[str, Any]:
    from repro.network.delays import UniformDelay

    return _election_fingerprint(12, seed=17, a0=0.3, delay=UniformDelay(0.2, 2.2))


@scenario("election_faults_fifo_n10")
def _election_faults() -> Dict[str, Any]:
    from repro.network.faults import CrashStopFault, FaultInjector, MessageLossFault

    injectors = []

    def install(network: Any) -> None:
        injector = FaultInjector(network)
        injector.apply(
            [MessageLossFault(0.15), CrashStopFault(node_uid=3, crash_time=5.0)]
        )
        injectors.append(injector)

    fingerprint = _election_fingerprint(
        10,
        seed=6,
        a0=0.3,
        fifo=True,
        faults=install,
        max_events=30_000,
        max_time=600.0,
    )
    injector = injectors[0]
    fingerprint["faults"] = {
        "messages_dropped": injector.messages_dropped,
        "nodes_crashed": list(injector.nodes_crashed),
    }
    return fingerprint


def _baseline_fingerprint(run: Callable[..., Any], n: int, seed: int, **kwargs: Any) -> Dict[str, Any]:
    return {"result": canonical(run(n, seed=seed, **kwargs))}


@scenario("baseline_chang_roberts_n9")
def _baseline_chang_roberts() -> Dict[str, Any]:
    from repro.algorithms.leader_election import run_chang_roberts

    return _baseline_fingerprint(run_chang_roberts, 9, seed=3)


@scenario("baseline_dolev_klawe_rodeh_n9")
def _baseline_dolev_klawe_rodeh() -> Dict[str, Any]:
    from repro.algorithms.leader_election import run_dolev_klawe_rodeh

    return _baseline_fingerprint(run_dolev_klawe_rodeh, 9, seed=3)


@scenario("baseline_franklin_n9")
def _baseline_franklin() -> Dict[str, Any]:
    from repro.algorithms.leader_election import run_franklin

    return _baseline_fingerprint(run_franklin, 9, seed=3)


@scenario("baseline_itai_rodeh_n9")
def _baseline_itai_rodeh() -> Dict[str, Any]:
    from repro.algorithms.leader_election import run_itai_rodeh

    return _baseline_fingerprint(run_itai_rodeh, 9, seed=3)


def _sync_fingerprint(synchronizer: str, **kwargs: Any) -> Dict[str, Any]:
    from repro.algorithms.synchronous import MaxComputationSync
    from repro.network.topology import bidirectional_ring
    from repro.synchronizers import (
        AbdSynchronizerProgram,
        AlphaSynchronizerProgram,
        BetaSynchronizerProgram,
        build_bfs_tree,
        run_synchronized,
    )

    n, rounds = 6, 4
    topology = bidirectional_ring(n)
    values = {uid: (uid * 29) % 97 for uid in range(n)}

    def process_factory(uid: int) -> Any:
        return MaxComputationSync(values[uid], rounds_needed=rounds)

    delay_bound = kwargs.pop("delay_bound", 2.0)
    factories = {
        "alpha": lambda uid, p, tr, st: AlphaSynchronizerProgram(p, tr, st),
        "beta": lambda uid, p, tr, st: BetaSynchronizerProgram(p, tr, st),
        "abd": lambda uid, p, tr, st: AbdSynchronizerProgram(
            p, tr, st, delay_bound=delay_bound
        ),
    }
    knowledge_factory = None
    if synchronizer == "beta":
        tree = build_bfs_tree(topology)
        knowledge_factory = lambda uid: tree[uid]  # noqa: E731 - tiny closure
    result = run_synchronized(
        topology,
        process_factory,
        factories[synchronizer],
        total_rounds=rounds,
        synchronizer_name=synchronizer,
        seed=1,
        knowledge_factory=knowledge_factory,
        **kwargs,
    )
    return {"result": canonical(result)}


@scenario("sync_alpha_ring6")
def _sync_alpha() -> Dict[str, Any]:
    return _sync_fingerprint("alpha")


@scenario("sync_beta_ring6")
def _sync_beta() -> Dict[str, Any]:
    return _sync_fingerprint("beta")


@scenario("sync_abd_late_messages")
def _sync_abd() -> Dict[str, Any]:
    from repro.network.delays import ExponentialDelay

    # An ABE-tailed delay against a small hard bound: late messages must
    # appear, exercising the late-message counter path.
    return _sync_fingerprint("abd", delay=ExponentialDelay(mean=1.0), delay_bound=1.5)


@scenario("experiment_e2_reduced")
def _experiment_e2() -> Dict[str, Any]:
    from repro.experiments import e2_time_complexity

    return fingerprint_experiment(
        e2_time_complexity.run(sizes=(6, 10), trials=3, base_seed=22)
    )


@scenario("experiment_e3_reduced")
def _experiment_e3() -> Dict[str, Any]:
    from repro.experiments import e3_activation_parameter

    return fingerprint_experiment(
        e3_activation_parameter.run(n=8, multipliers=(0.5, 1.0), trials=3, base_seed=33)
    )
