"""Reusable differential / golden test harness (see ``differential.py``)."""

from harness.differential import (  # noqa: F401
    SCENARIOS,
    assert_matches_golden,
    canonical,
    compare_fingerprints,
    fingerprint_network,
    golden_path,
    load_golden,
    run_scenario,
    save_golden,
)
