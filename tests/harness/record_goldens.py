#!/usr/bin/env python3
"""(Re)record the golden fingerprints under ``tests/harness/goldens/``.

Usage::

    python tests/harness/record_goldens.py            # record every scenario
    python tests/harness/record_goldens.py NAME ...   # record a subset

Provenance: the goldens were first generated on the pre-refactor election
core (commit 19a8dd0, PR 2).  PR 4 flipped ``batch_sampling``/``batch_ticks``
to default-on -- an *intended* stream/accounting change -- and re-recorded
every scenario that follows the library defaults; the two mode-pinned
scenarios (``election_scalar_n16``, ``election_batched_n16``) kept their
PR 2 bytes, proving the historical streams themselves are untouched.
Re-record only when a behaviour change is intended, and explain the diff in
the commit message.  ``tests/test_differential_election.py`` asserts every
scenario against these files on each run.
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = Path(__file__).resolve()
_REPO = _HERE.parents[2]
for entry in (str(_REPO / "src"), str(_REPO / "tests")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from harness.differential import SCENARIOS, run_scenario, save_golden  # noqa: E402


def main(argv: list) -> int:
    names = argv or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {unknown}; known: {sorted(SCENARIOS)}")
        return 2
    for name in names:
        path = save_golden(name, run_scenario(name))
        print(f"recorded {name} -> {path.relative_to(_REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
