"""Search spaces: dimensions, grids, sampling, materialization, round-trip."""

from __future__ import annotations

import random

import pytest

from repro.dse.space import (
    DIMENSIONS,
    CategoricalDimension,
    IntRangeDimension,
    LogUniformDimension,
    SearchSpace,
    dimension_from_dict,
    point_label,
)
from repro.scenarios.spec import ScenarioSpec

BASE = {
    "algorithm": "abe-election",
    "topology": {"kind": "uniring", "params": {"n": 5}},
    "seed": 3,
    "trials": 2,
    "a0": 0.2,
}

SPACE = {
    "base": BASE,
    "dimensions": [
        {"name": "a0", "kind": "log-uniform", "field": "a0", "low": 0.05, "high": 0.4, "points": 3},
        {"name": "n", "kind": "int-range", "field": "topology.params.n", "low": 4, "high": 8, "step": 2},
        {
            "name": "delay",
            "kind": "categorical",
            "field": "delay",
            "choices": [None, {"kind": "constant", "params": {"value": 1.0}}],
        },
    ],
}


class TestDimensions:
    def test_registry_knows_the_three_kinds(self):
        assert DIMENSIONS.known() == ["categorical", "int-range", "log-uniform"]

    def test_int_range_values_are_the_stepped_range(self):
        dim = IntRangeDimension(name="n", field="topology.params.n", low=4, high=9, step=2)
        assert dim.values() == [4, 6, 8]

    def test_int_range_sample_stays_on_grid(self):
        dim = IntRangeDimension(name="n", field="topology.params.n", low=4, high=9, step=2)
        rng = random.Random(0)
        assert all(dim.sample(rng) in (4, 6, 8) for _ in range(50))

    def test_log_uniform_grid_is_geometric_with_endpoints(self):
        dim = LogUniformDimension(name="a", field="a0", low=0.01, high=1.0, points=3)
        values = dim.values()
        assert values[0] == pytest.approx(0.01)
        assert values[1] == pytest.approx(0.1)
        assert values[-1] == pytest.approx(1.0)

    def test_log_uniform_samples_within_bounds(self):
        dim = LogUniformDimension(name="a", field="a0", low=0.01, high=1.0)
        rng = random.Random(1)
        assert all(0.01 <= dim.sample(rng) <= 1.0 for _ in range(200))

    def test_categorical_rejects_empty_choices(self):
        with pytest.raises(ValueError, match="at least one choice"):
            CategoricalDimension(name="d", field="delay", choices=())

    def test_unknown_scenario_field_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            IntRangeDimension(name="x", field="no_such_field", low=0, high=1)

    def test_round_trip_through_dict(self):
        dim = LogUniformDimension(name="a", field="a0", low=0.01, high=1.0, points=5)
        again = dimension_from_dict(dim.to_dict())
        assert again == dim

    def test_bad_kind_names_candidates(self):
        with pytest.raises(ValueError, match="known dimension kinds"):
            dimension_from_dict({"name": "x", "kind": "gaussian", "field": "a0"})


class TestSearchSpace:
    def test_grid_is_the_cartesian_product(self):
        space = SearchSpace.from_dict(SPACE)
        grid = space.grid()
        assert len(grid) == 3 * 3 * 2 == space.size()
        assert len({point_label(p) for p in grid}) == len(grid)

    def test_exhaustive_only_without_continuous_dimensions(self):
        space = SearchSpace.from_dict(SPACE)
        assert not space.exhaustive()  # log-uniform axis
        discrete = SearchSpace.from_dict(
            {"base": BASE, "dimensions": [SPACE["dimensions"][1]]}
        )
        assert discrete.exhaustive()

    def test_materialize_assigns_dotted_paths(self):
        space = SearchSpace.from_dict(SPACE)
        spec = space.materialize({"a0": 0.1, "n": 6, "delay": None})
        assert isinstance(spec, ScenarioSpec)
        assert spec.a0 == pytest.approx(0.1)
        assert spec.topology.params["n"] == 6
        assert spec.delay is None

    def test_materialize_label_depends_only_on_assignments(self):
        space = SearchSpace.from_dict(SPACE)
        point = {"a0": 0.1, "n": 6, "delay": {"kind": "constant", "params": {"value": 1.0}}}
        assert space.materialize(point).label == space.materialize(dict(point)).label
        assert space.materialize(point).label == point_label(point)

    def test_materialize_validates_through_the_spec_layer(self):
        space = SearchSpace.from_dict(SPACE)
        with pytest.raises(ValueError):
            space.materialize({"a0": -1.0, "n": 6, "delay": None})

    def test_materialize_rejects_missing_or_extra_assignments(self):
        space = SearchSpace.from_dict(SPACE)
        with pytest.raises(ValueError, match="exactly the dimensions"):
            space.materialize({"a0": 0.1})
        with pytest.raises(ValueError, match="exactly the dimensions"):
            space.materialize({"a0": 0.1, "n": 6, "delay": None, "extra": 1})

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate dimension"):
            SearchSpace.from_dict(
                {"base": BASE, "dimensions": [SPACE["dimensions"][0]] * 2}
            )

    def test_round_trip_through_dict(self):
        space = SearchSpace.from_dict(SPACE)
        again = SearchSpace.from_dict(space.to_dict())
        assert again.to_dict() == space.to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown search-space key"):
            SearchSpace.from_dict({"base": BASE, "dims": []})

    def test_sampling_is_deterministic_for_a_seed(self):
        space = SearchSpace.from_dict(SPACE)
        first, second = random.Random(7), random.Random(7)
        a = [space.sample(first) for _ in range(3)]
        b = [space.sample(second) for _ in range(3)]
        assert a == b
        assert len({point_label(p) for p in a}) > 1  # the stream advances
