"""Unit tests for reproducible named random streams."""

from __future__ import annotations

from repro.sim.rng import RandomSource, derive_seed, fork_seed

import pytest


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_different_names_differ(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_different_master_seeds_differ(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_result_fits_63_bits_and_nonnegative(self):
        for name in ("a", "b", "channel/17", "node/3/coin"):
            seed = derive_seed(123456789, name)
            assert 0 <= seed < 2**63

    def test_fork_seed_varies_by_trial(self):
        assert fork_seed(7, 0) != fork_seed(7, 1)
        assert fork_seed(7, 0, salt="x") != fork_seed(7, 0, salt="y")


class TestRandomSource:
    def test_same_name_same_stream_object(self):
        source = RandomSource(5)
        assert source.stream("coin") is source.stream("coin")

    def test_reproducible_across_instances(self):
        a = RandomSource(5).stream("coin").random()
        b = RandomSource(5).stream("coin").random()
        assert a == b

    def test_independent_of_creation_order(self):
        source_a = RandomSource(5)
        source_a.stream("first")
        value_a = source_a.stream("second").random()
        source_b = RandomSource(5)
        value_b = source_b.stream("second").random()
        assert value_a == value_b

    def test_different_names_give_different_values(self):
        source = RandomSource(5)
        assert source.stream("a").random() != source.stream("b").random()

    def test_namespace_separates_streams(self):
        base = RandomSource(5)
        child = base.child("trial1")
        assert base.stream("coin").random() != child.stream("coin").random()

    def test_child_namespaces_nest(self):
        source = RandomSource(5, namespace="outer")
        child = source.child("inner")
        assert child.namespace == "outer/inner"

    def test_spawn_trial_sources(self):
        source = RandomSource(5)
        trials = list(source.spawn_trial_sources(3))
        values = [t.stream("x").random() for t in trials]
        assert len(set(values)) == 3

    def test_numpy_stream_reproducible(self):
        a = RandomSource(5).numpy_stream("gauss").normal()
        b = RandomSource(5).numpy_stream("gauss").normal()
        assert a == b

    def test_numpy_and_python_streams_are_distinct(self):
        source = RandomSource(5)
        python_value = source.stream("x").random()
        numpy_value = float(source.numpy_stream("x").random())
        assert python_value != numpy_value

    def test_known_streams_lists_qualified_names(self):
        source = RandomSource(5, namespace="ns")
        source.stream("a")
        source.stream("b")
        assert set(source.known_streams()) == {"ns/a", "ns/b"}

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomSource("seed")  # type: ignore[arg-type]
