"""Unit tests for the columnar election engine (:mod:`repro.core.vector_core`).

The vector core draws from its own numpy streams (see the stream-migration
note in ``tests/harness/differential.py``), so these tests check engine
*semantics* -- determinism, the election invariants, fault handling, budget
classification and the ``core="vector"`` dispatch contract -- rather than
event-for-event equality with the object core.  Distributional agreement
with the object core is covered by ``tests/test_property_vector_core.py``.
"""

from __future__ import annotations

import pytest

from repro.core.runner import ELECTION_CORES, run_election
from repro.sim.engine import SimulationDiverged
from repro.core.vector_core import run_vector_election
from repro.network.delays import ConstantDelay, ExponentialDelay, UniformDelay


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = run_vector_election(32, a0=0.05, seed=7)
        second = run_vector_election(32, a0=0.05, seed=7)
        assert first == second

    def test_different_seeds_differ(self):
        results = {
            (run_vector_election(32, a0=0.05, seed=seed).leader_uid,
             run_vector_election(32, a0=0.05, seed=seed).election_time)
            for seed in range(8)
        }
        assert len(results) > 1


class TestInvariants:
    @pytest.mark.parametrize("n", [2, 3, 8, 31, 64])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unique_leader_and_knockouts(self, n, seed):
        result = run_vector_election(n, a0=0.1, seed=seed)
        assert result.elected
        assert result.leaders_elected == 1
        assert 0 <= result.leader_uid < n
        # Clean path: every non-leader is knocked out exactly once and no
        # hop counter ever exceeds n.
        assert result.knockout_messages == n - 1
        assert result.hop_overflows == 0
        assert result.activations >= 1
        assert result.messages_total >= n

    def test_delay_families(self):
        for delay in (
            ConstantDelay(value=1.0),
            UniformDelay(low=0.5, high=1.5),
            ExponentialDelay(mean=1.0),
        ):
            result = run_vector_election(16, a0=0.05, delay=delay, seed=3)
            assert result.elected
            assert result.leaders_elected == 1

    def test_fifo_and_processing_delay(self):
        result = run_vector_election(
            16,
            a0=0.05,
            seed=5,
            fifo=True,
            processing_delay=ConstantDelay(value=0.01),
        )
        assert result.elected
        assert result.leaders_elected == 1

    def test_purge_off_still_at_most_one_leader(self):
        # Ablation A2: purging disabled can legitimately livelock (all nodes
        # passive, a token circulating forever), so only safety is asserted.
        for seed in range(6):
            result = run_vector_election(
                8, a0=0.2, seed=seed, purge_at_active=False, max_events=20_000
            )
            assert result.leaders_elected <= 1


class TestFaults:
    def test_crash_breaks_unidirectional_ring(self):
        # A crashed node partitions a unidirectional ring: no message can
        # complete the circuit, so the election cannot finish.
        result = run_vector_election(
            12, a0=0.1, seed=1, crashes=[(2, 1.0)], max_events=50_000
        )
        assert not result.elected
        assert result.leaders_elected == 0

    def test_message_loss_keeps_safety(self):
        for seed in range(5):
            result = run_vector_election(
                12, a0=0.1, seed=seed, message_loss=0.05, max_events=50_000
            )
            assert result.leaders_elected <= 1
            if result.elected:
                assert 0 <= result.leader_uid < 12

    def test_loss_probability_one_rejected(self):
        # Same contract as MessageLossFault: certain loss is a config error.
        with pytest.raises(ValueError, match="message_loss"):
            run_vector_election(8, message_loss=1.0)

    def test_crash_before_start_excludes_node(self):
        for seed in range(5):
            result = run_vector_election(8, a0=0.2, seed=seed, crashes=[(3, 0.0)])
            assert result.leader_uid != 3


class TestBudget:
    def test_on_budget_stop_truncates(self):
        result = run_vector_election(
            64, a0=1e-9, seed=0, max_events=50, on_budget="stop"
        )
        assert not result.elected

    def test_on_budget_raise(self):
        with pytest.raises(SimulationDiverged):
            run_vector_election(64, a0=1e-9, seed=0, max_events=50, on_budget="raise")

    def test_max_time_truncates(self):
        result = run_vector_election(64, a0=1e-9, seed=0, max_time=3.0)
        assert not result.elected


class TestRunnerDispatch:
    def test_cores_registry(self):
        assert ELECTION_CORES == ("object", "vector")

    def test_vector_core_dispatch_matches_direct_call(self):
        via_runner = run_election(16, a0=0.05, seed=4, core="vector")
        direct = run_vector_election(16, a0=0.05, seed=4)
        assert via_runner == direct

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError, match="core must be one of"):
            run_election(8, core="compiled")

    def test_vector_rejects_clock_bounds(self):
        with pytest.raises(ValueError, match="clock_bounds"):
            run_election(8, core="vector", clock_bounds=(0.9, 1.1))

    def test_vector_rejects_drift(self):
        with pytest.raises(ValueError, match="drift"):
            run_election(8, core="vector", clock_drift_factory=lambda rng: None)

    def test_vector_rejects_trace(self):
        with pytest.raises(ValueError, match="trace"):
            run_election(8, core="vector", enable_trace=True)

    def test_object_core_unchanged_by_default(self):
        assert run_election(8, a0=0.2, seed=0) == run_election(
            8, a0=0.2, seed=0, core="object"
        )


class TestScenarioWiring:
    def test_spec_round_trip_and_default_omission(self):
        from repro.scenarios.spec import ScenarioSpec, SpecNode

        spec = ScenarioSpec(
            algorithm="abe-election",
            topology=SpecNode("uniring", {"n": 16}),
            core="vector",
        )
        data = spec.to_dict()
        assert data["core"] == "vector"
        assert ScenarioSpec.from_dict(data).core == "vector"
        assert "core" not in ScenarioSpec(
            algorithm="abe-election", topology=SpecNode("uniring", {"n": 16})
        ).to_dict()
        with pytest.raises(ValueError, match="core"):
            ScenarioSpec(
                algorithm="abe-election",
                topology=SpecNode("uniring", {"n": 4}),
                core="gpu",
            )

    def test_trial_translates_faults(self):
        from repro.scenarios.runtime import run_scenario
        from repro.scenarios.spec import ScenarioSpec, SpecNode

        spec = ScenarioSpec(
            algorithm="abe-election",
            topology=SpecNode("uniring", {"n": 10}),
            core="vector",
            faults=(
                SpecNode("message-loss", {"loss_probability": 0.05}),
                SpecNode("crash", {"node_uid": 2, "crash_time": 0.0}),
            ),
            trials=2,
            seed=11,
        )
        for result in run_scenario(spec):
            assert result.leaders_elected <= 1
            assert not result.elected  # initial crash partitions the ring

    def test_trial_rejects_vector_incompatible_specs(self):
        from repro.scenarios.runtime import run_scenario
        from repro.scenarios.spec import ScenarioSpec, SpecNode

        base = dict(
            algorithm="abe-election", topology=SpecNode("uniring", {"n": 8})
        )
        with pytest.raises(ValueError, match="clock_bounds"):
            run_scenario(
                ScenarioSpec(core="vector", clock_bounds=(0.8, 1.2), **base)
            )
        with pytest.raises(ValueError, match="core"):
            run_scenario(
                ScenarioSpec(
                    algorithm="echo-wave",
                    topology=SpecNode("uniring", {"n": 8}),
                    core="vector",
                )
            )

    def test_study_scaling_fits(self):
        from repro.scenarios.report import render_study_scaling, study_scaling_fits
        from repro.scenarios.runtime import run_study
        from repro.scenarios.spec import ScenarioSpec, SpecNode, StudySpec

        points = tuple(
            ScenarioSpec(
                algorithm="abe-election",
                topology=SpecNode("uniring", {"n": n}),
                core="vector",
                trials=3,
                seed=9,
                label=f"n{n}",
            )
            for n in (8, 16, 32)
        )
        study = StudySpec(name="scaling-smoke", points=points)
        per_point = run_study(study)
        fitted = study_scaling_fits(study, per_point)
        assert fitted is not None
        assert fitted["sizes"] == [8, 16, 32]
        assert set(fitted["fits"]) == {"election_time", "messages_total"}
        text = render_study_scaling(study, per_point)
        assert "fitted scaling laws" in text
        assert "best fit" in text

    def test_scaling_fits_none_for_single_size(self):
        from repro.scenarios.report import study_scaling_fits
        from repro.scenarios.runtime import run_study
        from repro.scenarios.spec import ScenarioSpec, SpecNode, StudySpec

        point = ScenarioSpec(
            algorithm="abe-election",
            topology=SpecNode("uniring", {"n": 8}),
            trials=2,
            seed=1,
        )
        study = StudySpec(name="one-size", points=(point,))
        per_point = run_study(study)
        assert study_scaling_fits(study, per_point) is None
