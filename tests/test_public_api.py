"""Tests of the public API surface: exports, docstrings, version metadata.

These guard the package boundary a downstream user sees: everything advertised
in ``__all__`` must be importable, carry a docstring, and the top-level
quickstart of the README must keep working verbatim.
"""

from __future__ import annotations

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.network",
    "repro.models",
    "repro.core",
    "repro.algorithms",
    "repro.algorithms.leader_election",
    "repro.synchronizers",
    "repro.stats",
    "repro.experiments",
    "repro.cli",
]


class TestExports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports_and_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_public_classes_have_docstrings(self):
        from repro import (
            ABDModel,
            ABEModel,
            AbeElectionProgram,
            AdaptiveActivation,
            ElectionResult,
            Network,
            NetworkConfig,
        )

        for obj in (
            ABDModel,
            ABEModel,
            AbeElectionProgram,
            AdaptiveActivation,
            ElectionResult,
            Network,
            NetworkConfig,
        ):
            assert obj.__doc__, f"{obj.__name__} has no docstring"


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import recommended_a0, run_election

        n = 16
        result = run_election(n, a0=recommended_a0(n), seed=7)
        assert result.elected is True
        assert 0 <= result.leader_uid < n
        assert result.messages_total > 0
        assert result.election_time > 0

    def test_docstring_quickstart_in_package(self):
        assert "run_election" in repro.__doc__

    def test_election_result_repr_fields(self):
        from repro import run_election

        result = run_election(8, a0=0.05, seed=1)
        for field_name in (
            "n",
            "elected",
            "leader_uid",
            "messages_total",
            "activations",
            "knockout_messages",
            "ticks",
            "seed",
            "a0",
        ):
            assert hasattr(result, field_name)
