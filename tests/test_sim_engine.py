"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventKind


class TestScheduling:
    def test_events_fire_in_time_order(self, simulator):
        fired = []
        simulator.schedule(3.0, lambda: fired.append("c"))
        simulator.schedule(1.0, lambda: fired.append("a"))
        simulator.schedule(2.0, lambda: fired.append("b"))
        simulator.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, simulator):
        fired = []
        for label in "abcde":
            simulator.schedule(1.0, lambda l=label: fired.append(l))
        simulator.run()
        assert fired == list("abcde")

    def test_priority_breaks_ties_before_sequence(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append("low"), priority=1)
        simulator.schedule(1.0, lambda: fired.append("high"), priority=0)
        simulator.run()
        assert fired == ["high", "low"]

    def test_clock_advances_to_event_times(self, simulator):
        times = []
        simulator.schedule(2.5, lambda: times.append(simulator.now))
        simulator.schedule(7.25, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [2.5, 7.25]
        assert simulator.now == 7.25

    def test_schedule_at_absolute_time(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        handle = simulator.schedule_at(5.0, lambda: None)
        assert handle.time == 5.0

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-0.1, lambda: None)

    def test_nan_and_inf_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule(float("-inf"), lambda: None)

    def test_nan_absolute_time_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule_at(float("nan"), lambda: None)

    def test_scheduling_into_the_past_rejected(self, simulator):
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_are_executed(self, simulator):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                simulator.schedule(1.0, lambda: chain(depth + 1))

        simulator.schedule(0.0, lambda: chain(0))
        simulator.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert simulator.now == 5.0


class TestRunControl:
    def test_run_until_horizon_stops_early(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(10.0, lambda: fired.append(10))
        stop_time = simulator.run(until=5.0)
        assert fired == [1]
        assert stop_time == 5.0
        assert simulator.pending == 1

    def test_run_until_can_be_resumed(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(10.0, lambda: fired.append(10))
        simulator.run(until=5.0)
        simulator.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_queue_empties(self, simulator):
        simulator.schedule(1.0, lambda: None)
        end = simulator.run(until=100.0)
        assert end == 100.0
        assert simulator.now == 100.0

    def test_max_events_cap(self, simulator):
        fired = []
        for index in range(10):
            simulator.schedule(float(index), lambda i=index: fired.append(i))
        simulator.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_stop_requested_from_callback(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(2.0, lambda: (fired.append(2), simulator.stop()))
        simulator.schedule(3.0, lambda: fired.append(3))
        simulator.run()
        assert fired == [1, 2]

    def test_step_returns_false_on_empty_queue(self, simulator):
        assert simulator.step() is False

    def test_clear_drops_pending_events(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.clear()
        assert simulator.pending == 0
        simulator.run()
        assert simulator.events_processed == 0


class TestCancellationAndListeners:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("x"))
        assert handle.cancel() is True
        simulator.run()
        assert fired == []
        assert handle.cancelled

    def test_double_cancel_reports_false(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_cancelled_events_do_not_count_as_processed(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        handle.cancel()
        simulator.run()
        assert simulator.events_processed == 1

    def test_listener_sees_every_fired_event(self, simulator):
        seen = []
        simulator.add_listener(lambda event: seen.append(event.kind))
        simulator.schedule(1.0, lambda: None, kind=EventKind.TIMER)
        simulator.schedule(2.0, lambda: None, kind=EventKind.MESSAGE_DELIVERY)
        simulator.run()
        assert seen == [EventKind.TIMER, EventKind.MESSAGE_DELIVERY]

    def test_listener_can_be_removed(self, simulator):
        seen = []
        listener = lambda event: seen.append(event)  # noqa: E731 - test brevity
        simulator.add_listener(listener)
        simulator.remove_listener(listener)
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert seen == []

    def test_counters_track_scheduled_and_processed(self, simulator):
        for index in range(5):
            simulator.schedule(float(index), lambda: None)
        simulator.run()
        assert simulator.events_scheduled == 5
        assert simulator.events_processed == 5

    def test_cancel_after_firing_reports_false(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert handle.fired
        assert handle.cancel() is False
        assert not handle.cancelled

    def test_cancelled_head_run_is_drained_under_horizon(self, simulator):
        fired = []
        handles = [simulator.schedule(1.0, lambda: fired.append("x")) for _ in range(3)]
        simulator.schedule(2.0, lambda: fired.append("live"))
        for handle in handles:
            handle.cancel()
        simulator.run(until=5.0)
        assert fired == ["live"]
        assert simulator.now == 5.0

    def test_run_with_only_cancelled_events_advances_to_horizon(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        handle.cancel()
        assert simulator.run(until=3.0) == 3.0
        assert simulator.events_processed == 0

    def test_event_cap_does_not_jump_clock_to_horizon(self, simulator):
        # Stopping at max_events must leave the clock at the last fired event,
        # not at `until`, or a later run() would move time backwards.
        times = []
        for t in (1.0, 2.0, 3.0):
            simulator.schedule(t, lambda t=t: times.append(t))
        stop_time = simulator.run(until=100.0, max_events=1)
        assert times == [1.0]
        assert stop_time == 1.0
        simulator.run()
        assert times == [1.0, 2.0, 3.0]
        assert simulator.now == 3.0

    def test_listener_cancelling_current_event_still_counts_as_step(self, simulator):
        # run() and step() must agree: a live-popped event that a listener
        # cancels mid-flight is a processed step whose callback is suppressed.
        def cancel_in_flight(event):
            event.cancelled = True

        fired = []
        simulator.add_listener(cancel_in_flight)
        simulator.schedule(1.0, lambda: fired.append("a"))
        simulator.schedule(2.0, lambda: fired.append("b"))
        simulator.run()
        assert fired == []

        stepper = Simulator()
        stepper.add_listener(cancel_in_flight)
        stepper.schedule(1.0, lambda: fired.append("a"))
        stepper.schedule(2.0, lambda: fired.append("b"))
        while stepper.step():
            pass
        assert stepper.events_processed == simulator.events_processed == 2
        assert fired == []


class TestScheduleMany:
    def test_ties_fire_in_list_order(self, simulator):
        fired = []
        simulator.schedule_many((1.0, lambda l=label: fired.append(l)) for label in "abcde")
        simulator.run()
        assert fired == list("abcde")

    def test_interleaves_correctly_with_schedule(self, simulator):
        fired = []
        simulator.schedule(2.0, lambda: fired.append("late"))
        simulator.schedule_many([(1.0, lambda: fired.append("batch"))])
        simulator.schedule(0.5, lambda: fired.append("early"))
        simulator.run()
        assert fired == ["early", "batch", "late"]

    def test_returns_cancelable_handles(self, simulator):
        fired = []
        handles = simulator.schedule_many(
            [(1.0, lambda: fired.append(1)), (2.0, lambda: fired.append(2))]
        )
        assert len(handles) == 2
        handles[0].cancel()
        simulator.run()
        assert fired == [2]

    def test_counts_as_scheduled(self, simulator):
        simulator.schedule_many([(0.0, lambda: None)] * 4)
        assert simulator.events_scheduled == 4
        assert simulator.pending == 4

    def test_invalid_delays_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule_many([(-1.0, lambda: None)])
        with pytest.raises(SimulationError):
            simulator.schedule_many([(float("nan"), lambda: None)])

    def test_failed_batch_leaves_simulator_untouched(self, simulator):
        fired = []
        with pytest.raises(SimulationError):
            simulator.schedule_many(
                [(1.0, lambda: fired.append("x")), (float("nan"), lambda: None)]
            )
        assert simulator.pending == 0
        assert simulator.events_scheduled == 0
        simulator.run()
        assert fired == []
        # The sequence counter must not have been burned by the failed batch.
        a = simulator.schedule(1.0, lambda: fired.append("a"))
        b = simulator.schedule(1.0, lambda: fired.append("b"))
        simulator.run()
        assert fired == ["a", "b"]
        assert a.time == b.time
