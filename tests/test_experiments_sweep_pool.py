"""Behaviour and determinism of the shared SweepPool.

The pool-reuse optimization must be invisible in the results: the same
``derive_seed`` discipline, the same input order, bit-identical outcomes for
any worker count -- whether the pool is created per sweep, passed in from
outside, or absent (serial).
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import SweepPool, fork_available
from repro.experiments.runner import monte_carlo
from repro.experiments.workloads import ElectionTrial, election_sweep, election_trials
from repro.network.delays import ExponentialDelay


def square(x):  # module-level: picklable for pool workers
    return x * x


def poison(x):  # module-level: picklable, raises on one input
    if x == 3:
        raise ValueError("poison item")
    return x * x


class TestSweepPoolBasics:
    def test_map_preserves_order(self):
        with SweepPool(workers=3) as pool:
            assert pool.map(square, range(12)) == [x * x for x in range(12)]

    def test_single_worker_runs_serially_without_a_pool(self):
        pool = SweepPool(workers=1)
        assert pool.map(square, [1, 2, 3]) == [1, 4, 9]
        assert pool._pool is None

    def test_pool_object_is_reused_across_maps(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        with SweepPool(workers=2) as pool:
            assert pool.map(square, range(4)) == [0, 1, 4, 9]
            first = pool._pool
            assert first is not None
            assert pool.map(square, range(6)) == [x * x for x in range(6)]
            assert pool._pool is first  # no re-fork between parameter points

    def test_closed_pool_rejects_parallel_maps(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        pool = SweepPool(workers=2)
        pool.map(square, range(4))
        pool.close()
        with pytest.raises(RuntimeError):
            pool.map(square, range(4))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SweepPool(workers=0)
        with pytest.raises(ValueError):
            SweepPool(workers=2, chunk_size=0)

    def test_monte_carlo_matches_serial_runner(self):
        serial = monte_carlo(square, trials=10, base_seed=3)
        with SweepPool(workers=2) as pool:
            pooled = pool.monte_carlo(square, trials=10, base_seed=3)
        assert pooled == serial

    def test_monte_carlo_keep_filter_after_ordered_gather(self):
        with SweepPool(workers=2) as pool:
            kept = pool.monte_carlo(
                square, trials=12, base_seed=1, keep=lambda value: value % 2 == 0
            )
        expected = [v for v in monte_carlo(square, trials=12, base_seed=1) if v % 2 == 0]
        assert kept == expected


class TestSweepPoolExceptionPaths:
    """Failure inside a map must leave the pool object in a sane state."""

    def test_worker_exception_propagates_and_pool_stays_usable(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        with SweepPool(workers=2) as pool:
            with pytest.raises(ValueError, match="poison item"):
                pool.map(poison, range(6))
            # pool.map always propagated worker exceptions and kept the pool
            # alive; the supervised rewrite must preserve both.
            assert pool.map(square, range(6)) == [x * x for x in range(6)]

    def test_close_after_failed_map_is_clean(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        pool = SweepPool(workers=2)
        with pytest.raises(ValueError):
            pool.map(poison, range(6))
        pool.close()  # must terminate+join without hanging or raising
        assert pool._pool is None
        with pytest.raises(RuntimeError):
            pool.map(square, range(4))

    def test_ensure_releases_owned_pool_on_error(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        leaked = {}
        with pytest.raises(RuntimeError, match="mid-sweep"):
            with SweepPool.ensure(None, 2) as owned:
                owned.map(square, range(4))
                leaked["pool"] = owned
                raise RuntimeError("mid-sweep")
        assert leaked["pool"]._closed
        assert leaked["pool"]._pool is None

    def test_ensure_leaves_external_pool_open_on_error(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        with SweepPool(workers=2) as external:
            with pytest.raises(RuntimeError):
                with SweepPool.ensure(external, None) as shared:
                    shared.map(square, range(4))
                    raise RuntimeError("mid-sweep")
            assert not external._closed
            assert external.map(square, range(4)) == [0, 1, 4, 9]


class TestElectionTrialPicklability:
    def test_election_trial_round_trips_through_pickle(self):
        import pickle

        trial = ElectionTrial(8, 0.3, ExponentialDelay(mean=1.0), {"fifo": True})
        clone = pickle.loads(pickle.dumps(trial))
        assert clone.n == 8 and clone.a0 == 0.3 and clone.election_kwargs == {"fifo": True}
        assert clone(seed=5) == trial(seed=5)


class TestSweepDeterminism:
    def test_pooled_trials_bit_identical_to_serial(self):
        serial = election_trials(8, trials=4, base_seed=13)
        with SweepPool(workers=3) as pool:
            pooled = election_trials(8, trials=4, base_seed=13, pool=pool)
        assert pooled == serial

    def test_shared_pool_sweep_bit_identical_across_paths(self):
        sizes = (4, 8)
        serial = election_sweep(sizes, trials=3, base_seed=9)
        with SweepPool(workers=2) as pool:
            shared = election_sweep(sizes, trials=3, base_seed=9, pool=pool)
        per_point = {
            n: election_trials(n, 3, 9, label=f"n{n}", workers=2) for n in sizes
        }
        assert serial == shared == per_point

    def test_e1_with_external_pool_matches_serial(self):
        from repro.experiments import e1_message_complexity

        serial = e1_message_complexity.run(sizes=(4, 8), trials=3, base_seed=11)
        with SweepPool(workers=2) as pool:
            pooled = e1_message_complexity.run(
                sizes=(4, 8), trials=3, base_seed=11, pool=pool
            )
        assert serial.findings == pooled.findings
        assert [dict(r) for r in serial.table()] == [dict(r) for r in pooled.table()]

    def test_e5_with_pool_matches_serial(self):
        from repro.experiments import e5_synchronizer_lower_bound

        serial = e5_synchronizer_lower_bound.run(
            sizes=(6,), base_seed=55, include_random_graph=False
        )
        with SweepPool(workers=2) as pool:
            pooled = e5_synchronizer_lower_bound.run(
                sizes=(6,), base_seed=55, include_random_graph=False, pool=pool
            )
        assert serial.findings == pooled.findings
        assert [dict(r) for r in serial.table()] == [dict(r) for r in pooled.table()]
